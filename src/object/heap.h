#ifndef EXODUS_OBJECT_HEAP_H_
#define EXODUS_OBJECT_HEAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "extra/type.h"
#include "object/mvcc.h"
#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::object {

/// An object with identity stored in the heap.
struct HeapObject {
  /// Runtime tuple type of the object (may be a subtype of the static
  /// element type of the container it lives in).
  const extra::Type* type = nullptr;
  /// One value per entry of type->attributes().
  std::vector<Value> fields;
  /// True while the object is owned (by a parent object or by a named
  /// top-level entity). An owned object cannot acquire a second owner —
  /// ORION composite-object semantics (paper §2.2).
  bool owned = false;
  /// Owning object, or kInvalidOid when owned by a named entity (or not
  /// owned at all).
  Oid owner_object = kInvalidOid;
  /// Name of the named extent this object is a member of ("" if none);
  /// drives secondary-index maintenance wherever the object is updated.
  std::string owner_extent;
};

/// One version of a heap object. Chains are newest-first via `prev`.
/// A version with begin == kPendingEpoch belongs to the in-flight
/// writer `writer` and is invisible to everyone else; commit stamps
/// `begin` with the commit epoch. `dead` marks a tombstone: the object
/// does not exist at epochs where the tombstone is the visible version.
struct HeapVersion {
  std::atomic<uint64_t> begin{kPendingEpoch};
  bool dead = false;
  /// Owning write transaction while pending; never read once begin is
  /// stamped, so the dangling pointer after commit is harmless.
  const HeapWriteTxn* writer = nullptr;
  HeapObject obj;
  /// Older version, or null. Atomic because the GC sweep severs tails
  /// while lock-free readers walk the chain.
  std::atomic<HeapVersion*> prev{nullptr};
};

/// The run-time object store: maps Oids to version chains of
/// identity-bearing objects.
///
/// Concurrency model (MVCC, see docs/concurrency.md):
///  - Snapshot readers call GetVisible(oid, epoch) lock-free; they see
///    the newest version committed at or before their pinned epoch.
///  - Snapshot writers stage copy-on-write pending versions through
///    GetForWrite / Allocate / Delete with a HeapWriteTxn, then
///    CommitTxn stamps everything with one epoch (or RollbackTxn pops
///    it all). Staging is only allowed for objects inside the txn's
///    latched extents; anything else flags needs_escalation.
///  - Exclusive (legacy-locked) contexts call Get(), which returns the
///    newest committed version mutably; with no snapshot pins active
///    (guaranteed by the session layer) in-place mutation is safe.
///
/// Referential integrity follows GEM (paper footnote 2): deleting an
/// object leaves dangling references, which dereference to NULL from
/// then on. Deleting an object cascade-deletes its `own ref`
/// components, found by walking the object's state under the guidance
/// of its type. Oids are never reused; a deleted object's chain prunes
/// down to a single tombstone version.
class ObjectHeap {
 public:
  ObjectHeap();
  ~ObjectHeap();
  ObjectHeap(const ObjectHeap&) = delete;
  ObjectHeap& operator=(const ObjectHeap&) = delete;

  /// Creates a new live object and returns its Oid (never kInvalidOid).
  /// With `txn`, the object is created as a pending version visible
  /// only to that transaction until commit.
  Oid Allocate(const extra::Type* type, std::vector<Value> fields,
               HeapWriteTxn* txn = nullptr);

  /// The newest *committed* version of `oid`, or nullptr if the object
  /// was deleted or never existed. Mutable access is for exclusive
  /// execution contexts only (no snapshot pins active).
  HeapObject* Get(Oid oid);
  const HeapObject* Get(Oid oid) const;

  /// The version of `oid` visible at `epoch`: the newest version with
  /// begin <= epoch, or the transaction's own pending version when
  /// `txn` staged one (read-your-writes). nullptr when the object does
  /// not exist at that epoch. Lock-free.
  const HeapObject* GetVisible(Oid oid, uint64_t epoch,
                               const HeapWriteTxn* txn = nullptr) const;

  /// Mutable access for writers. Without `txn`, identical to Get().
  /// With `txn`: returns the transaction's pending version, staging a
  /// copy-on-write version of the snapshot-visible one on first touch.
  /// Returns nullptr if the object is invisible at the snapshot — or if
  /// it may not be staged, in which case txn->needs_escalation is set
  /// and the caller must abort the statement for exclusive re-run.
  HeapObject* GetForWrite(Oid oid, HeapWriteTxn* txn);

  /// Marks `child` as owned. Fails with ConstraintViolation if it is
  /// already owned (an object has at most one owner at a time).
  util::Status SetOwned(Oid child, Oid owner_object,
                        HeapWriteTxn* txn = nullptr);

  /// Clears ownership (e.g. when an element is removed from an own-ref
  /// set without being destroyed — not reachable through EXCESS, but used
  /// by internal maintenance and tests).
  util::Status ClearOwned(Oid child, HeapWriteTxn* txn = nullptr);

  /// Deletes the object and, transitively, every component it owns.
  /// With `txn` the deletions are staged as tombstone versions (the
  /// object stays visible to other snapshots until commit). Returns the
  /// number of objects deleted. Deleting an already-dead or unknown oid
  /// is a no-op returning 0.
  size_t Delete(Oid oid, HeapWriteTxn* txn = nullptr);

  /// Stamps every version `txn` staged with `epoch` (release stores).
  /// Called inside the controller's commit critical section.
  void CommitTxn(HeapWriteTxn* txn, uint64_t epoch);

  /// Pops and frees every pending version `txn` staged. The versions
  /// were never visible to anyone else, so this leaves no trace.
  void RollbackTxn(HeapWriteTxn* txn);

  /// Number of live (committed, not deleted) objects.
  size_t live_count() const {
    return static_cast<size_t>(live_count_.load(std::memory_order_relaxed));
  }
  /// Total oids ever allocated.
  uint64_t allocated_count() const {
    return next_oid_.load(std::memory_order_relaxed) - 1;
  }
  /// Total heap versions currently alive across all chains (the
  /// exodus_mvcc_live_versions gauge).
  uint64_t version_count() const {
    return static_cast<uint64_t>(
        version_count_.load(std::memory_order_relaxed));
  }

  /// Collects the Oids of all `own ref` components reachable from `value`
  /// of declared type `type` without passing through a plain `ref`.
  static void CollectOwnedRefs(const extra::Type* type, const Value& value,
                               std::vector<Oid>* out);

  /// Iteration over the newest committed version of every live object
  /// (exclusive contexts: persistence after Checkpoint, tests).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    ForEachVisible(kMaxEpoch, std::forward<Fn>(fn));
  }

  /// Iteration over every object visible at `epoch` (consistent image
  /// for Save under a pinned snapshot).
  template <typename Fn>
  void ForEachVisible(uint64_t epoch, Fn&& fn) const {
    const size_t n = size_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const HeapObject* obj = GetVisible(static_cast<Oid>(i + 1), epoch);
      if (obj != nullptr) fn(static_cast<Oid>(i + 1), *obj);
    }
  }

  /// Frees versions no snapshot can reach: in every chain, everything
  /// strictly older than the newest version with begin <= frontier.
  /// Returns the number of versions freed. Safe to run concurrently
  /// with readers pinned at epochs >= frontier and with writers (which
  /// only push new heads).
  size_t GcBelow(uint64_t frontier);

  /// Re-creates an object with a specific oid (used when loading a saved
  /// database image). Fails if the oid is in use.
  util::Status Restore(Oid oid, const extra::Type* type,
                       std::vector<Value> fields, bool owned,
                       Oid owner_object, std::string owner_extent = "");

  /// Advances the allocator so future Allocate() calls return oids
  /// greater than `max_oid` (used after Restore).
  void ReserveThrough(Oid max_oid);

  /// Removes every object and resets the allocator (used when loading a
  /// saved database image; exclusive contexts only).
  void Clear();

 private:
  /// One slot per ever-allocated oid (oid n lives at slot n - 1): the
  /// head of the oid's version chain. Slots live in fixed-size chunks
  /// reached through a fixed-capacity array of atomic chunk pointers,
  /// so lock-free readers never race a growing directory: chunks are
  /// CAS-installed once and never move. 64K chunks x 4096 slots bounds
  /// the heap at 2^28 objects; the directory itself is 512 KiB.
  struct Slot {
    std::atomic<HeapVersion*> head{nullptr};
  };
  static constexpr size_t kChunkShift = 12;  // 4096 slots per chunk
  static constexpr size_t kChunkMask = (size_t{1} << kChunkShift) - 1;
  static constexpr size_t kMaxChunks = size_t{1} << 16;

  /// The slot for index `i`, or nullptr if its chunk was never
  /// allocated (read paths).
  Slot* SlotFor(size_t i) const;
  /// Ensures the chunk containing index `i` exists; returns the slot.
  Slot& EnsureSlot(size_t i);

  /// True if `oid`'s snapshot-visible ownership chain roots in one of
  /// `txn`'s latched extents (the staging rule).
  bool Stageable(Oid oid, const HeapWriteTxn* txn) const;

  /// Pushes a pending version owned by `txn` in front of `slot`'s chain
  /// and records it in the txn. `obj` is the version's payload.
  HeapVersion* PushPending(Oid oid, Slot* slot, HeapObject obj,
                           HeapWriteTxn* txn);

  static void FreeChain(HeapVersion* v);

  std::unique_ptr<std::atomic<Slot*>[]> chunks_;
  std::atomic<size_t> size_{0};  // slots in use: [0, size_) are valid
  std::atomic<Oid> next_oid_{1};
  std::atomic<long long> live_count_{0};
  std::atomic<long long> version_count_{0};
};

}  // namespace exodus::object

#endif  // EXODUS_OBJECT_HEAP_H_

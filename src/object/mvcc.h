#ifndef EXODUS_OBJECT_MVCC_H_
#define EXODUS_OBJECT_MVCC_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "object/value.h"

namespace exodus::object {

/// Version timestamps are epochs drawn from a database-wide atomic
/// counter (excess::ConcurrencyController). A version whose `begin` is
/// kPendingEpoch belongs to an in-flight writer statement and is
/// invisible to everyone but that writer; commit stamps it with the
/// next epoch in one short critical section, making every version a
/// statement wrote visible atomically.
inline constexpr uint64_t kPendingEpoch = ~uint64_t{0};

/// Snapshot epoch meaning "newest committed state". Used by exclusive
/// (legacy-locked) execution contexts, which see — and may mutate in
/// place — the committed head of every chain.
inline constexpr uint64_t kMaxEpoch = kPendingEpoch - 1;

struct HeapVersion;

/// The heap-facing half of one snapshot-mode write statement. Owned by
/// excess::StatementTxn; the heap uses it to tag pending versions with
/// their writer, enforce the staging rule (copy-on-write is allowed
/// only inside the statement's latched extents), and to commit or roll
/// back everything the statement staged.
struct HeapWriteTxn {
  /// Snapshot the statement reads at. Pinned *after* the extent latch
  /// is taken, so the newest committed version of every object in the
  /// latched extents is <= snapshot (no lost updates).
  uint64_t snapshot = kMaxEpoch;
  /// Names of the extents this statement holds exclusive latches on.
  /// Objects whose ownership chain does not lead into one of these
  /// extents cannot be staged; touching them flags needs_escalation.
  const std::set<std::string>* latched_extents = nullptr;
  /// Every pending version this statement pushed (one per staged oid,
  /// in staging order). Commit stamps them; rollback pops them.
  std::vector<std::pair<Oid, HeapVersion*>> staged;
  /// Net change to the live-object count if this statement commits
  /// (+1 per allocation, -1 per tombstone over a live object).
  long long live_delta = 0;
  /// Set when the statement touched an object it may not stage (free
  /// object, foreign extent, shared embedded payload). The session
  /// rolls the statement back and re-runs it under the exclusive lock.
  bool needs_escalation = false;
};

/// One version of a named object's value (extra::NamedObject). Same
/// lifecycle as HeapVersion, but named cells are only ever published at
/// commit time (begin is final at publication), so no pending state.
struct ValueVersion {
  explicit ValueVersion(Value v, uint64_t begin_epoch)
      : begin(begin_epoch), value(std::move(v)) {}
  std::atomic<uint64_t> begin;
  Value value;
  /// Older version, or null. Atomic because the GC sweep severs tails
  /// while lock-free readers walk the chain.
  std::atomic<ValueVersion*> prev{nullptr};
};

/// A chain of ValueVersions with an atomic head: lock-free readers pick
/// the newest version whose begin <= their snapshot epoch; writers
/// publish at commit under the controller's commit mutex; exclusive
/// contexts read and mutate the head in place (no readers can be
/// active then). Used for the `value` cell of every named object.
class VersionedValue {
 public:
  VersionedValue() : head_(new ValueVersion(Value::Null(), 0)) {}
  explicit VersionedValue(Value v) : head_(new ValueVersion(std::move(v), 0)) {}
  ~VersionedValue() { FreeChain(head_.load(std::memory_order_relaxed)); }

  VersionedValue(const VersionedValue&) = delete;
  VersionedValue& operator=(const VersionedValue&) = delete;
  VersionedValue(VersionedValue&& o) noexcept
      : head_(o.head_.exchange(nullptr, std::memory_order_relaxed)) {}
  VersionedValue& operator=(VersionedValue&& o) noexcept {
    if (this != &o) {
      FreeChain(head_.exchange(
          o.head_.exchange(nullptr, std::memory_order_relaxed),
          std::memory_order_relaxed));
    }
    return *this;
  }

  /// Newest version (committed head). Exclusive contexts only — a
  /// concurrent committer may swap the head under lock-free readers.
  const Value& newest() const {
    return head_.load(std::memory_order_acquire)->value;
  }
  Value* mutable_newest() {
    return &head_.load(std::memory_order_relaxed)->value;
  }

  /// Newest version visible at `epoch` (lock-free).
  const Value& At(uint64_t epoch) const {
    const ValueVersion* v = head_.load(std::memory_order_acquire);
    while (v != nullptr) {
      if (v->begin.load(std::memory_order_acquire) <= epoch) return v->value;
      v = v->prev.load(std::memory_order_acquire);
    }
    static const Value kNull;
    return kNull;
  }

  /// Pushes a new head version stamped `epoch` (commit critical
  /// section only; at most one committer at a time).
  void Publish(Value v, uint64_t epoch) {
    auto* node = new ValueVersion(std::move(v), epoch);
    node->prev.store(head_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    head_.store(node, std::memory_order_release);
  }

  /// Collapses the chain to a single version visible at every epoch
  /// (DDL / load paths, under the exclusive lock with no pins active).
  void Reset(Value v) {
    FreeChain(head_.exchange(new ValueVersion(std::move(v), 0),
                             std::memory_order_relaxed));
  }

  /// Frees versions no snapshot can reach: everything strictly older
  /// than the newest version with begin <= frontier. Returns the number
  /// of versions freed. Safe against concurrent readers pinned at
  /// epochs >= frontier (they never walk past that version).
  size_t PruneBelow(uint64_t frontier) {
    ValueVersion* v = head_.load(std::memory_order_acquire);
    while (v != nullptr &&
           v->begin.load(std::memory_order_acquire) > frontier) {
      v = v->prev.load(std::memory_order_acquire);
    }
    if (v == nullptr) return 0;
    ValueVersion* tail = v->prev.exchange(nullptr, std::memory_order_acq_rel);
    size_t freed = 0;
    while (tail != nullptr) {
      ValueVersion* p = tail->prev.load(std::memory_order_relaxed);
      delete tail;
      tail = p;
      ++freed;
    }
    return freed;
  }

  /// Number of versions currently in the chain (diagnostics).
  size_t chain_length() const {
    size_t n = 0;
    const ValueVersion* v = head_.load(std::memory_order_acquire);
    while (v != nullptr) {
      ++n;
      v = v->prev.load(std::memory_order_acquire);
    }
    return n;
  }

 private:
  static void FreeChain(ValueVersion* v) {
    while (v != nullptr) {
      ValueVersion* p = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = p;
    }
  }
  std::atomic<ValueVersion*> head_;
};

}  // namespace exodus::object

#endif  // EXODUS_OBJECT_MVCC_H_

#include "index/btree.h"

#include <cassert>

namespace exodus::index {

using object::Oid;
using object::Value;
using object::ValueCompare;
using util::Result;
using util::Status;

struct BTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BTree::Leaf : BTree::Node {
  Leaf() : Node(true) {}
  std::vector<Value> keys;
  std::vector<std::vector<Oid>> postings;  // parallel to keys
  Leaf* next = nullptr;
};

struct BTree::Internal : BTree::Node {
  Internal() : Node(false) {}
  // children.size() == keys.size() + 1; subtree i holds keys < keys[i],
  // subtree i+1 holds keys >= keys[i].
  std::vector<Value> keys;
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

/// Comparison for keys already validated as mutually comparable.
int CmpOrDie(const Value& a, const Value& b) {
  auto r = ValueCompare(a, b);
  assert(r.ok());
  return r.ok() ? *r : 0;
}

/// Index of the child to descend into for `key`.
size_t ChildIndex(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CmpOrDie(key, keys[mid]) < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// First position in `keys` with keys[pos] >= key.
size_t LowerBound(const std::vector<Value>& keys, const Value& key) {
  size_t lo = 0;
  size_t hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CmpOrDie(keys[mid], key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTree::BTree(size_t order) : order_(order < 4 ? 4 : order) {
  root_ = std::make_unique<Leaf>();
}

BTree::~BTree() = default;

size_t BTree::height() const {
  size_t h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    n = static_cast<const Internal*>(n)->children[0].get();
    ++h;
  }
  return h;
}

BTree::Leaf* BTree::FindLeaf(const Value& key) const {
  Node* n = root_.get();
  while (!n->is_leaf) {
    auto* in = static_cast<Internal*>(n);
    n = in->children[ChildIndex(in->keys, key)].get();
  }
  return static_cast<Leaf*>(n);
}

void BTree::SplitChild(Internal* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  size_t mid = order_ / 2;
  if (child->is_leaf) {
    auto* leaf = static_cast<Leaf*>(child);
    auto right = std::make_unique<Leaf>();
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                       std::make_move_iterator(leaf->keys.end()));
    right->postings.assign(
        std::make_move_iterator(leaf->postings.begin() + mid),
        std::make_move_iterator(leaf->postings.end()));
    leaf->keys.resize(mid);
    leaf->postings.resize(mid);
    right->next = leaf->next;
    Leaf* right_raw = right.get();
    Value separator = right->keys.front();
    parent->keys.insert(parent->keys.begin() + child_idx, separator);
    parent->children.insert(parent->children.begin() + child_idx + 1,
                            std::move(right));
    leaf->next = right_raw;
  } else {
    auto* in = static_cast<Internal*>(child);
    auto right = std::make_unique<Internal>();
    Value separator = in->keys[mid];
    right->keys.assign(std::make_move_iterator(in->keys.begin() + mid + 1),
                       std::make_move_iterator(in->keys.end()));
    right->children.assign(
        std::make_move_iterator(in->children.begin() + mid + 1),
        std::make_move_iterator(in->children.end()));
    in->keys.resize(mid);
    in->children.resize(mid + 1);
    parent->keys.insert(parent->keys.begin() + child_idx,
                        std::move(separator));
    parent->children.insert(parent->children.begin() + child_idx + 1,
                            std::move(right));
  }
}

Status BTree::Insert(const Value& key, Oid oid) {
  // Validate comparability against an existing key (if any).
  {
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = static_cast<const Internal*>(n)->children[0].get();
    }
    const auto* leaf = static_cast<const Leaf*>(n);
    if (!leaf->keys.empty()) {
      EXODUS_RETURN_IF_ERROR(ValueCompare(key, leaf->keys[0]).status());
    } else if (size_ == 0) {
      // Empty tree: validate the key is self-comparable (ordered kind).
      EXODUS_RETURN_IF_ERROR(ValueCompare(key, key).status());
    }
  }

  // Preemptive split of a full root.
  bool root_full = root_->is_leaf
                       ? static_cast<Leaf*>(root_.get())->keys.size() >= order_
                       : static_cast<Internal*>(root_.get())->keys.size() >=
                             order_;
  if (root_full) {
    auto new_root = std::make_unique<Internal>();
    new_root->children.push_back(std::move(root_));
    SplitChild(new_root.get(), 0);
    root_ = std::move(new_root);
  }

  // Descend, splitting full children preemptively.
  Node* n = root_.get();
  while (!n->is_leaf) {
    auto* in = static_cast<Internal*>(n);
    size_t idx = ChildIndex(in->keys, key);
    Node* child = in->children[idx].get();
    size_t child_keys =
        child->is_leaf ? static_cast<Leaf*>(child)->keys.size()
                       : static_cast<Internal*>(child)->keys.size();
    if (child_keys >= order_) {
      SplitChild(in, idx);
      idx = ChildIndex(in->keys, key);
    }
    n = in->children[idx].get();
  }

  auto* leaf = static_cast<Leaf*>(n);
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CmpOrDie(leaf->keys[pos], key) == 0) {
    leaf->postings[pos].push_back(oid);
  } else {
    leaf->keys.insert(leaf->keys.begin() + pos, key);
    leaf->postings.insert(leaf->postings.begin() + pos, {oid});
  }
  ++size_;
  return Status::OK();
}

Result<bool> BTree::Erase(const Value& key, Oid oid) {
  if (size_ == 0) return false;
  Leaf* leaf = FindLeaf(key);
  EXODUS_RETURN_IF_ERROR(
      leaf->keys.empty() ? Status::OK()
                         : ValueCompare(key, leaf->keys[0]).status());
  size_t pos = LowerBound(leaf->keys, key);
  if (pos >= leaf->keys.size() || CmpOrDie(leaf->keys[pos], key) != 0) {
    return false;
  }
  auto& posting = leaf->postings[pos];
  for (size_t i = 0; i < posting.size(); ++i) {
    if (posting[i] == oid) {
      posting.erase(posting.begin() + static_cast<ptrdiff_t>(i));
      --size_;
      if (posting.empty()) {
        // Lazy deletion: remove the key but do not rebalance. Separator
        // keys above may become stale bounds, which is harmless for
        // correctness of search.
        leaf->keys.erase(leaf->keys.begin() + static_cast<ptrdiff_t>(pos));
        leaf->postings.erase(leaf->postings.begin() +
                             static_cast<ptrdiff_t>(pos));
      }
      return true;
    }
  }
  return false;
}

Result<std::vector<Oid>> BTree::Lookup(const Value& key) const {
  std::vector<Oid> out;
  if (size_ == 0) return out;
  Leaf* leaf = FindLeaf(key);
  if (!leaf->keys.empty()) {
    EXODUS_RETURN_IF_ERROR(ValueCompare(key, leaf->keys[0]).status());
  }
  size_t pos = LowerBound(leaf->keys, key);
  if (pos < leaf->keys.size() && CmpOrDie(leaf->keys[pos], key) == 0) {
    out = leaf->postings[pos];
  }
  return out;
}

Result<std::vector<Oid>> BTree::Range(const std::optional<Value>& lo,
                                      bool lo_inclusive,
                                      const std::optional<Value>& hi,
                                      bool hi_inclusive) const {
  std::vector<Oid> out;
  if (size_ == 0) return out;

  // Start at the leaf containing lo (or the leftmost leaf).
  Leaf* leaf;
  size_t pos = 0;
  if (lo.has_value()) {
    leaf = FindLeaf(*lo);
    if (!leaf->keys.empty()) {
      EXODUS_RETURN_IF_ERROR(ValueCompare(*lo, leaf->keys[0]).status());
    }
    pos = LowerBound(leaf->keys, *lo);
  } else {
    Node* n = root_.get();
    while (!n->is_leaf) n = static_cast<Internal*>(n)->children[0].get();
    leaf = static_cast<Leaf*>(n);
  }

  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      const Value& k = leaf->keys[pos];
      if (lo.has_value()) {
        int c = CmpOrDie(k, *lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = CmpOrDie(k, *hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.insert(out.end(), leaf->postings[pos].begin(),
                 leaf->postings[pos].end());
    }
    leaf = leaf->next;
    pos = 0;
  }
  return out;
}

Status BTree::CheckInvariants() const {
  // Walk the tree checking key ordering within nodes and that leaf-chain
  // traversal yields globally sorted keys.
  struct Walker {
    Status CheckOrdered(const std::vector<Value>& keys) {
      for (size_t i = 1; i < keys.size(); ++i) {
        auto c = ValueCompare(keys[i - 1], keys[i]);
        if (!c.ok()) return c.status();
        if (*c >= 0) return Status::Internal("keys out of order in node");
      }
      return Status::OK();
    }
    Status Walk(const Node* n, const Leaf** leftmost) {
      if (n->is_leaf) {
        const auto* leaf = static_cast<const Leaf*>(n);
        if (*leftmost == nullptr) *leftmost = leaf;
        if (leaf->keys.size() != leaf->postings.size()) {
          return Status::Internal("leaf keys/postings size mismatch");
        }
        return CheckOrdered(leaf->keys);
      }
      const auto* in = static_cast<const Internal*>(n);
      if (in->children.size() != in->keys.size() + 1) {
        return Status::Internal("internal node child count mismatch");
      }
      EXODUS_RETURN_IF_ERROR(CheckOrdered(in->keys));
      for (const auto& c : in->children) {
        EXODUS_RETURN_IF_ERROR(Walk(c.get(), leftmost));
      }
      return Status::OK();
    }
  };
  Walker w;
  const Leaf* leftmost = nullptr;
  EXODUS_RETURN_IF_ERROR(w.Walk(root_.get(), &leftmost));

  // Leaf chain must be globally sorted and contain exactly size_ entries.
  size_t total = 0;
  const Value* prev = nullptr;
  for (const Leaf* l = leftmost; l != nullptr; l = l->next) {
    for (size_t i = 0; i < l->keys.size(); ++i) {
      if (prev != nullptr) {
        auto c = ValueCompare(*prev, l->keys[i]);
        if (!c.ok()) return c.status();
        if (*c >= 0) return Status::Internal("leaf chain out of order");
      }
      prev = &l->keys[i];
      total += l->postings[i].size();
    }
  }
  if (total != size_) {
    return Status::Internal("size bookkeeping mismatch: counted " +
                            std::to_string(total) + ", recorded " +
                            std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace exodus::index

#ifndef EXODUS_INDEX_BTREE_H_
#define EXODUS_INDEX_BTREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::index {

/// An in-memory B+tree keyed by object::Value (any totally ordered value
/// kind: numerics, strings, booleans, enums, comparable ADTs such as
/// Date). Each key maps to the Oids of the objects carrying that key;
/// duplicates are supported.
///
/// This is the ordered access method of the reproduction's EXODUS-style
/// storage layer; the optimizer selects it through the access-method
/// applicability table (paper §4.1.2).
class BTree {
 public:
  /// `order`: maximum number of keys per node (>= 4).
  explicit BTree(size_t order = 64);
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, oid). Keys must be mutually comparable; a TypeError is
  /// returned if `key` cannot be ordered against existing keys.
  util::Status Insert(const object::Value& key, object::Oid oid);

  /// Removes one (key, oid) entry; returns true if it was present.
  util::Result<bool> Erase(const object::Value& key, object::Oid oid);

  /// All oids whose key equals `key`.
  util::Result<std::vector<object::Oid>> Lookup(const object::Value& key) const;

  /// All oids with key in [lo, hi] (either bound may be absent;
  /// inclusiveness per flag). Results are in key order.
  util::Result<std::vector<object::Oid>> Range(
      const std::optional<object::Value>& lo, bool lo_inclusive,
      const std::optional<object::Value>& hi, bool hi_inclusive) const;

  /// Total number of (key, oid) entries.
  size_t size() const { return size_; }
  /// Height of the tree (1 = a single leaf).
  size_t height() const;

  /// Checks structural invariants (in-node key ordering, globally sorted
  /// leaf chain, entry-count bookkeeping); used by tests. Returns an
  /// error describing the first violation found.
  util::Status CheckInvariants() const;

 private:
  struct Node;
  struct Leaf;
  struct Internal;

  Leaf* FindLeaf(const object::Value& key) const;
  void SplitChild(Internal* parent, size_t child_idx);

  size_t order_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace exodus::index

#endif  // EXODUS_INDEX_BTREE_H_

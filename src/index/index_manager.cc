#include "index/index_manager.h"

#include <mutex>

namespace exodus::index {

using object::Oid;
using object::Value;
using util::Result;
using util::Status;

Result<AccessMethodKind> ParseAccessMethodKind(const std::string& name) {
  if (name == "btree") return AccessMethodKind::kBTree;
  if (name == "hash") return AccessMethodKind::kHash;
  return Status::InvalidArgument("unknown index kind '" + name +
                                 "' (expected btree or hash)");
}

AccessMethodTable::AccessMethodTable() {
  using K = extra::TypeKind;
  for (K kind : {K::kInt2, K::kInt4, K::kInt8, K::kFloat4, K::kFloat8,
                 K::kBool, K::kChar, K::kText, K::kEnum}) {
    rows_.push_back({kind, -1, AccessMethodKind::kBTree, true});
    rows_.push_back({kind, -1, AccessMethodKind::kHash, false});
  }
}

void AccessMethodTable::AddAdtRow(int adt_id, AccessMethodKind method,
                                  bool supports_range) {
  rows_.push_back({extra::TypeKind::kAdt, adt_id, method, supports_range});
}

bool AccessMethodTable::Applicable(const extra::Type* key_type,
                                   AccessMethodKind method,
                                   bool need_range) const {
  if (key_type == nullptr) return false;
  for (const Row& row : rows_) {
    if (row.kind != key_type->kind()) continue;
    if (row.kind == extra::TypeKind::kAdt && row.adt_id != key_type->adt_id()) {
      continue;
    }
    if (row.method != method) continue;
    if (need_range && !row.supports_range) continue;
    return true;
  }
  return false;
}

Status IndexInfo::Insert(const Value& key, Oid oid) {
  std::unique_lock<std::shared_mutex> lk(*latch);
  if (btree) return btree->Insert(key, oid);
  hash->Insert(key, oid);
  return Status::OK();
}

Status IndexInfo::Erase(const Value& key, Oid oid) {
  std::unique_lock<std::shared_mutex> lk(*latch);
  if (btree) return btree->Erase(key, oid).status();
  hash->Erase(key, oid);
  return Status::OK();
}

Result<std::vector<Oid>> IndexInfo::Lookup(const Value& key) const {
  std::shared_lock<std::shared_mutex> lk(*latch);
  if (btree) return btree->Lookup(key);
  return hash->Lookup(key);
}

Result<std::vector<Oid>> IndexInfo::Range(const std::optional<Value>& lo,
                                          bool lo_inclusive,
                                          const std::optional<Value>& hi,
                                          bool hi_inclusive) const {
  std::shared_lock<std::shared_mutex> lk(*latch);
  return btree->Range(lo, lo_inclusive, hi, hi_inclusive);
}

size_t IndexInfo::size() const {
  std::shared_lock<std::shared_mutex> lk(*latch);
  return btree ? btree->size() : hash->size();
}

Status IndexManager::Create(const std::string& name,
                            const std::string& set_name,
                            const std::string& attr, AccessMethodKind method,
                            const extra::Type* key_type) {
  if (indexes_.count(name)) {
    return Status::AlreadyExists("index '" + name + "' already exists");
  }
  if (!table_.Applicable(key_type, method, /*need_range=*/false)) {
    return Status::TypeError(
        "no access-method table row permits indexing attribute '" + attr +
        "' of type " + (key_type ? key_type->ToString() : "<null>") +
        " with this method");
  }
  IndexInfo info;
  info.name = name;
  info.set_name = set_name;
  info.attr = attr;
  info.method = method;
  if (method == AccessMethodKind::kBTree) {
    info.btree = std::make_unique<BTree>();
  } else {
    info.hash = std::make_unique<HashIndex>();
  }
  info.latch = std::make_unique<std::shared_mutex>();
  indexes_.emplace(name, std::move(info));
  return Status::OK();
}

Status IndexManager::Drop(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound("no index named '" + name + "'");
  }
  return Status::OK();
}

IndexInfo* IndexManager::Find(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<IndexInfo*> IndexManager::IndexesOn(const std::string& set_name) {
  std::vector<IndexInfo*> out;
  for (auto& [name, info] : indexes_) {
    if (info.set_name == set_name) out.push_back(&info);
  }
  return out;
}

IndexInfo* IndexManager::FindUsable(const std::string& set_name,
                                    const std::string& attr,
                                    bool need_range) {
  for (auto& [name, info] : indexes_) {
    if (info.set_name != set_name || info.attr != attr) continue;
    if (need_range && info.method != AccessMethodKind::kBTree) continue;
    return &info;
  }
  return nullptr;
}

void IndexManager::OnInsert(const std::string& set_name,
                            const std::string& attr, const Value& key,
                            Oid oid) {
  if (key.is_null()) return;
  for (auto& [name, info] : indexes_) {
    if (info.set_name == set_name && info.attr == attr) {
      // Maintenance failures (e.g. an uncomparable key sneaking into a
      // btree) are surfaced at query time; here the entry is skipped.
      (void)info.Insert(key, oid);
    }
  }
}

void IndexManager::OnErase(const std::string& set_name,
                           const std::string& attr, const Value& key,
                           Oid oid) {
  if (key.is_null()) return;
  for (auto& [name, info] : indexes_) {
    if (info.set_name == set_name && info.attr == attr) {
      (void)info.Erase(key, oid);
    }
  }
}

}  // namespace exodus::index

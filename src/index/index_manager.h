#ifndef EXODUS_INDEX_INDEX_MANAGER_H_
#define EXODUS_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "extra/type.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::index {

enum class AccessMethodKind { kBTree, kHash };

util::Result<AccessMethodKind> ParseAccessMethodKind(const std::string& name);

/// The access-method applicability table (paper §4.1.2): optimizer
/// information is "given in tabular form to a utility responsible for
/// managing optimizer information", so ADTs can be added dynamically and
/// the optimizer does table lookup to determine method applicability.
///
/// A row states that keys of a given type descriptor support a given
/// access method, and whether range predicates are supported there.
class AccessMethodTable {
 public:
  /// Seeds rows for the built-in base types (numerics, strings, bool,
  /// enums: btree with ranges + hash equality).
  AccessMethodTable();

  /// Adds a row for an ADT (by id). `supports_range` requires the ADT's
  /// payloads to be Comparable().
  void AddAdtRow(int adt_id, AccessMethodKind method, bool supports_range);

  /// True if `key_type` may be indexed with `method`; if `need_range`,
  /// the row must also support range predicates.
  bool Applicable(const extra::Type* key_type, AccessMethodKind method,
                  bool need_range) const;

 private:
  struct Row {
    extra::TypeKind kind;
    int adt_id;  // -1 unless kind == kAdt
    AccessMethodKind method;
    bool supports_range;
  };
  std::vector<Row> rows_;
};

/// One secondary index over a named extent.
///
/// Each index carries its own reader/writer latch: snapshot readers
/// probe (Lookup / Range / size, shared) concurrently with snapshot
/// writers maintaining entries (Insert / Erase, exclusive). The latch
/// lives behind a unique_ptr because IndexInfo is moved into the
/// manager's map and shared_mutex is immovable. Probes may return
/// entries for versions invisible at the caller's snapshot (inserts
/// are eager, erases deferred to the GC sweep) — the executor rechecks
/// every posting against the visible version's key.
struct IndexInfo {
  std::string name;
  std::string set_name;
  std::string attr;
  AccessMethodKind method;
  std::unique_ptr<BTree> btree;    // when method == kBTree
  std::unique_ptr<HashIndex> hash; // when method == kHash
  std::unique_ptr<std::shared_mutex> latch;

  util::Status Insert(const object::Value& key, object::Oid oid);
  util::Status Erase(const object::Value& key, object::Oid oid);
  util::Result<std::vector<object::Oid>> Lookup(
      const object::Value& key) const;
  /// Latched btree range probe; method must be kBTree.
  util::Result<std::vector<object::Oid>> Range(
      const std::optional<object::Value>& lo, bool lo_inclusive,
      const std::optional<object::Value>& hi, bool hi_inclusive) const;
  size_t size() const;
};

/// Owns all secondary indexes of a database and the access-method table.
/// The executor calls the On* hooks on every extent mutation; the
/// optimizer calls FindUsable when matching predicates to access paths.
class IndexManager {
 public:
  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  AccessMethodTable* access_methods() { return &table_; }
  const AccessMethodTable& access_methods() const { return table_; }

  /// Creates an (empty) index; the caller bulk-loads existing members.
  /// Validates applicability of `method` to `key_type` via the table.
  util::Status Create(const std::string& name, const std::string& set_name,
                      const std::string& attr, AccessMethodKind method,
                      const extra::Type* key_type);
  util::Status Drop(const std::string& name);

  IndexInfo* Find(const std::string& name);

  /// Indexes declared over `set_name` (for maintenance on mutation).
  std::vector<IndexInfo*> IndexesOn(const std::string& set_name);

  /// A usable index over (set, attr); if `need_range`, only a btree
  /// qualifies. Returns nullptr if none.
  IndexInfo* FindUsable(const std::string& set_name, const std::string& attr,
                        bool need_range);

  /// Maintenance hooks: `key` may be NULL, in which case the entry is
  /// skipped (nulls are not indexed; null comparisons never match).
  void OnInsert(const std::string& set_name, const std::string& attr,
                const object::Value& key, object::Oid oid);
  void OnErase(const std::string& set_name, const std::string& attr,
               const object::Value& key, object::Oid oid);

  const std::map<std::string, IndexInfo>& all() const { return indexes_; }

 private:
  AccessMethodTable table_;
  std::map<std::string, IndexInfo> indexes_;
};

}  // namespace exodus::index

#endif  // EXODUS_INDEX_INDEX_MANAGER_H_

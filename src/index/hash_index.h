#ifndef EXODUS_INDEX_HASH_INDEX_H_
#define EXODUS_INDEX_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::index {

/// An in-memory hash index over object::Value keys: equality lookups
/// only. Complements BTree as the unordered access method in the
/// access-method applicability table.
class HashIndex {
 public:
  HashIndex() = default;
  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  void Insert(const object::Value& key, object::Oid oid);

  /// Removes one (key, oid) entry; returns true if it was present.
  bool Erase(const object::Value& key, object::Oid oid);

  /// All oids whose key deep-equals `key`.
  std::vector<object::Oid> Lookup(const object::Value& key) const;

  size_t size() const { return size_; }

 private:
  struct Hasher {
    size_t operator()(const object::Value& v) const {
      return object::ValueHash(v);
    }
  };
  struct Eq {
    bool operator()(const object::Value& a, const object::Value& b) const {
      return object::ValueEquals(a, b);
    }
  };
  std::unordered_map<object::Value, std::vector<object::Oid>, Hasher, Eq>
      buckets_;
  size_t size_ = 0;
};

}  // namespace exodus::index

#endif  // EXODUS_INDEX_HASH_INDEX_H_

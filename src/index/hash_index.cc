#include "index/hash_index.h"

namespace exodus::index {

using object::Oid;
using object::Value;

void HashIndex::Insert(const Value& key, Oid oid) {
  buckets_[key].push_back(oid);
  ++size_;
}

bool HashIndex::Erase(const Value& key, Oid oid) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return false;
  auto& posting = it->second;
  for (size_t i = 0; i < posting.size(); ++i) {
    if (posting[i] == oid) {
      posting.erase(posting.begin() + static_cast<ptrdiff_t>(i));
      if (posting.empty()) buckets_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

std::vector<Oid> HashIndex::Lookup(const Value& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? std::vector<Oid>{} : it->second;
}

}  // namespace exodus::index

#include "wal/wal_format.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace exodus::wal {

using util::Result;
using util::Status;

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64Le(uint64_t v, std::string* out) {
  PutU32Le(static_cast<uint32_t>(v & 0xffffffffu), out);
  PutU32Le(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64Le(const char* p) {
  return static_cast<uint64_t>(GetU32Le(p)) |
         static_cast<uint64_t>(GetU32Le(p + 4)) << 32;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const Crc32Table& table = Table();
  uint32_t c = seed ^ 0xffffffffu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

void EncodeRecord(uint64_t lsn, RecordType type, const std::string& payload,
                  std::string* out) {
  // CRC covers lsn | type | payload, exactly as laid out on disk.
  std::string covered;
  covered.reserve(9 + payload.size());
  PutU64Le(lsn, &covered);
  covered.push_back(static_cast<char>(type));
  covered.append(payload);
  const uint32_t crc = Crc32(covered.data(), covered.size());

  out->reserve(out->size() + kRecordHeaderBytes + payload.size());
  PutU32Le(static_cast<uint32_t>(payload.size()), out);
  PutU32Le(crc, out);
  out->append(covered);
}

bool DecodeRecord(const std::string& buf, size_t* pos, WalRecord* out) {
  const size_t start = *pos;
  if (buf.size() - start < kRecordHeaderBytes) return false;
  const char* p = buf.data() + start;
  const uint32_t len = GetU32Le(p);
  if (len > kMaxRecordPayload) return false;
  if (buf.size() - start < kRecordHeaderBytes + len) return false;
  const uint32_t crc = GetU32Le(p + 4);
  // The CRC-covered region (lsn + type + payload) sits contiguously
  // after the 8-byte (len, crc) prefix.
  if (Crc32(p + 8, 9 + len) != crc) return false;
  out->lsn = GetU64Le(p + 8);
  out->type = static_cast<RecordType>(static_cast<unsigned char>(p[16]));
  out->payload.assign(p + kRecordHeaderBytes, len);
  *pos = start + kRecordHeaderBytes + len;
  return true;
}

// ---------------------------------------------------------------------------
// Segment naming
// ---------------------------------------------------------------------------

std::string SegmentPath(const std::string& base_path, uint64_t seq) {
  if (seq == 0) return base_path;
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, ".%06llu",
                static_cast<unsigned long long>(seq));
  return base_path + suffix;
}

uint64_t SegmentSeq(const std::string& base_path,
                    const std::string& segment_path) {
  if (segment_path.size() <= base_path.size() + 1) return 0;
  return std::strtoull(segment_path.c_str() + base_path.size() + 1, nullptr,
                       10);
}

Result<std::vector<std::string>> ListSegments(const std::string& base_path) {
  // Split into directory + file prefix.
  std::string dir = ".";
  std::string prefix = base_path;
  if (size_t slash = base_path.rfind('/'); slash != std::string::npos) {
    dir = base_path.substr(0, slash);
    prefix = base_path.substr(slash + 1);
  }

  std::vector<std::pair<uint64_t, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    // No directory at all means no WAL yet — not an error.
    return std::vector<std::string>{};
  }
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == prefix) {
      found.emplace_back(0, base_path);
      continue;
    }
    // "<prefix>.NNNNNN" with an all-digit suffix.
    if (name.size() <= prefix.size() + 1 ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name[prefix.size()] != '.') {
      continue;
    }
    const std::string suffix = name.substr(prefix.size() + 1);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(suffix.c_str(), nullptr, 10),
                       dir == "." ? name : dir + "/" + name);
  }
  ::closedir(d);

  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [seq, path] : found) out.push_back(std::move(path));
  return out;
}

Status SyncParentDir(const std::string& path) {
  std::string dir = ".";
  if (size_t slash = path.rfind('/'); slash != std::string::npos) {
    dir = path.substr(0, slash);
    if (dir.empty()) dir = "/";
  }
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open directory '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync of directory '" + dir +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace exodus::wal

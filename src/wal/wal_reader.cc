#include "wal/wal_reader.h"

#include <cstdio>

#include "util/status.h"

namespace exodus::wal {

using util::Result;
using util::Status;

namespace {

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL segment '" + path + "'");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IoError("error reading WAL segment '" + path + "'");
  }
  return out;
}

}  // namespace

Result<ReadResult> WalReader::ReadAll(const std::string& base_path) {
  EXODUS_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                          ListSegments(base_path));
  ReadResult result;
  uint64_t expected_lsn = 0;  // 0 == not yet pinned to a sequence

  for (size_t i = 0; i < paths.size(); ++i) {
    const bool is_last = i + 1 == paths.size();
    EXODUS_ASSIGN_OR_RETURN(std::string bytes, ReadFile(paths[i]));

    SegmentInfo info;
    info.seq = SegmentSeq(base_path, paths[i]);
    info.path = paths[i];

    size_t pos = 0;
    WalRecord rec;
    while (pos < bytes.size() && DecodeRecord(bytes, &pos, &rec)) {
      if (expected_lsn != 0 && rec.lsn != expected_lsn) {
        return Status::IoError(
            "WAL LSN discontinuity in '" + paths[i] + "': expected " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(rec.lsn));
      }
      expected_lsn = rec.lsn + 1;
      if (info.first_lsn == 0) info.first_lsn = rec.lsn;
      info.last_lsn = rec.lsn;
      result.last_lsn = rec.lsn;
      result.records.push_back(std::move(rec));
      info.valid_bytes = pos;
    }

    if (pos < bytes.size()) {
      // Undecodable bytes. Only the tail of the newest segment may be
      // torn by a crash; anywhere else this is corruption. A torn tail
      // is strictly a truncation — a crash cannot write valid records
      // past the tear — so if the bad frame is followed by a decodable
      // record, the damage is mid-stream corruption, not a tear.
      bool valid_record_follows = false;
      if (bytes.size() - pos >= kRecordHeaderBytes) {
        const uint32_t len = GetU32Le(bytes.data() + pos);
        const size_t after = pos + kRecordHeaderBytes + len;
        if (len <= kMaxRecordPayload && after <= bytes.size()) {
          size_t probe = after;
          WalRecord ignored;
          valid_record_follows = DecodeRecord(bytes, &probe, &ignored);
        }
      }
      if (!is_last || valid_record_follows) {
        return Status::IoError("corrupt WAL record in segment '" + paths[i] +
                               "' at offset " + std::to_string(pos));
      }
      result.tail_torn = true;
    }
    result.segments.push_back(std::move(info));
  }
  return result;
}

}  // namespace exodus::wal

#ifndef EXODUS_WAL_WAL_FORMAT_H_
#define EXODUS_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace exodus::wal {

/// The write-ahead log record format (docs/durability.md).
///
/// A WAL is a sequence of *segment* files. Segment 0 is the base path
/// itself (so a single-segment WAL is one ordinary file, as the legacy
/// logical journal was); rotated segments append a numeric suffix:
///
///   journal.log  journal.log.000001  journal.log.000002  ...
///
/// Each segment is a flat run of CRC-framed records:
///
///   +-----------+-----------+-----------+---------+----------------+
///   | u32 len   | u32 crc32 | u64 lsn   | u8 type | payload (len)  |
///   +-----------+-----------+-----------+---------+----------------+
///
/// All header integers are little-endian. `crc32` covers the lsn, the
/// type byte and the payload, so any torn or bit-flipped record fails
/// verification. LSNs are assigned sequentially starting at 1 and run
/// continuously across segment boundaries; a record whose LSN breaks
/// the sequence is treated as corruption.
///
/// Durability of the *file format* is torn-tail tolerant: a crash can
/// leave at most one partial record at the end of the newest segment,
/// which readers silently discard (the statement it framed was never
/// acknowledged). Corruption anywhere else is an error, not a silent
/// truncation.

/// What a WAL record frames.
enum class RecordType : uint8_t {
  /// One replayable EXCESS statement (UTF-8 text payload).
  kStatement = 1,
};

/// Fixed per-record header size: len + crc + lsn + type.
constexpr size_t kRecordHeaderBytes = 4 + 4 + 8 + 1;

/// Sanity cap on one record's payload (a statement); anything larger in
/// a header means the stream is corrupt.
constexpr uint32_t kMaxRecordPayload = 64u << 20;  // 64 MiB

/// One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  RecordType type = RecordType::kStatement;
  std::string payload;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `data`, seeded so
/// that crc of the empty string is 0. Table-driven, no dependencies.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Appends the on-disk encoding of one record to `out`.
void EncodeRecord(uint64_t lsn, RecordType type, const std::string& payload,
                  std::string* out);

/// Attempts to decode one record from `buf` at `*pos`.
///
/// Returns true and advances `*pos` past the record when a complete,
/// CRC-valid record is present. Returns false — leaving `*pos` at the
/// record start — when the bytes from `*pos` do not form a valid
/// record, whether truncated (torn tail) or corrupt; callers decide
/// which of the two it is from context (tail of the newest segment vs
/// anywhere else).
bool DecodeRecord(const std::string& buf, size_t* pos, WalRecord* out);

/// The path of segment `seq` of the WAL at `base_path` (seq 0 is the
/// base path itself).
std::string SegmentPath(const std::string& base_path, uint64_t seq);

/// Lists the existing segment files of the WAL at `base_path`, ordered
/// by sequence number. Missing low segments (dropped by checkpoints)
/// are fine; the result may be empty when no WAL exists yet.
util::Result<std::vector<std::string>> ListSegments(
    const std::string& base_path);

/// The sequence number encoded in a segment path (0 for the base path).
uint64_t SegmentSeq(const std::string& base_path,
                    const std::string& segment_path);

/// fsync() of the directory containing `path`, making a just-created,
/// renamed or unlinked directory entry durable.
util::Status SyncParentDir(const std::string& path);

}  // namespace exodus::wal

#endif  // EXODUS_WAL_WAL_FORMAT_H_

#ifndef EXODUS_WAL_DURABILITY_H_
#define EXODUS_WAL_DURABILITY_H_

#include <string>

// Light-weight header: included by SessionOptions and anything else that
// only needs the durability knob, without dragging in the WalWriter's
// mutex/thread machinery.

namespace exodus::wal {

/// When an acknowledged append is actually on disk.
enum class Durability {
  kSync,   ///< fdatasync before the append returns (one fsync per commit,
           ///< minus ride-alongs that were already staged).
  kGroup,  ///< the append waits for the flusher thread's next batched
           ///< fdatasync — many committers share one fsync.
  kAsync,  ///< the append returns once staged in memory; the flusher
           ///< writes it out in the background. Crash may lose it.
};

/// "sync" | "group" | "async".
inline const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kSync: return "sync";
    case Durability::kGroup: return "group";
    case Durability::kAsync: return "async";
  }
  return "?";
}

/// Parses a durability name; returns false (leaving `*out` untouched)
/// for anything else.
inline bool ParseDurability(const std::string& text, Durability* out) {
  if (text == "sync") { *out = Durability::kSync; return true; }
  if (text == "group") { *out = Durability::kGroup; return true; }
  if (text == "async") { *out = Durability::kAsync; return true; }
  return false;
}

}  // namespace exodus::wal

#endif  // EXODUS_WAL_DURABILITY_H_

#ifndef EXODUS_WAL_WAL_WRITER_H_
#define EXODUS_WAL_WAL_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "wal/durability.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace exodus::obs {
class WaitProfile;  // obs/wait_event.h
}

namespace exodus::wal {

/// The append side of the write-ahead log: a single writer object shared
/// by all sessions of a `Database`.
///
/// Group commit: appends stage encoded records into an in-memory buffer
/// under a cheap mutex; a flush swaps the buffer out, writes it with one
/// `write()` and makes it durable with one `fdatasync()`. A `kGroup`
/// committer that finds the I/O mutex free leads the batch and flushes
/// inline; committers that find a flush in flight block until a batch's
/// durable LSN covers their record, so any number of concurrent commits
/// that land while one fsync is in flight share the next one. A
/// dedicated flusher thread backstops followers whose record missed the
/// in-flight swap and drains `kAsync` appends, which return immediately
/// after staging. `kSync` appends run the swap-write-sync cycle inline
/// unconditionally (carrying along whatever else is staged).
///
/// Thread-safe. Lock order: `io_mu_` (file I/O) before `mu_` (staging);
/// batches therefore reach the file in LSN order.
struct WalOptions {
  /// Seal the active segment and start a new one once it exceeds
  /// this many bytes (checked after each flush).
  size_t segment_bytes = 16u << 20;
};

class WalWriter {
 public:
  using Options = WalOptions;

  /// Monotonic totals since Open; cheap snapshot for metrics.
  struct Counters {
    uint64_t appends = 0;        ///< records appended
    uint64_t fsyncs = 0;         ///< fdatasync calls on the log
    uint64_t flush_batches = 0;  ///< swap-write-sync cycles that wrote data
    uint64_t batch_records = 0;  ///< records across all flush batches
    uint64_t rotations = 0;      ///< segments sealed
  };

  /// Opens (or creates) the WAL at `base_path` for appending.
  ///
  /// Scans existing segments, truncates a torn tail off the newest one,
  /// and continues the LSN sequence after the last valid record (but
  /// never below `min_next_lsn`, which a checkpoint that truncated the
  /// whole log uses to keep LSNs monotonic). Corruption anywhere but
  /// the tail is an error — recovery must see it, not silently append
  /// past it.
  static util::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& base_path, uint64_t min_next_lsn,
      Options opts = Options());

  /// Flushes everything staged, stops the flusher thread, closes the log.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies `durability` (see enum). Returns the
  /// record's LSN. An I/O failure is sticky: every later append fails.
  util::Result<uint64_t> Append(RecordType type, const std::string& payload,
                                Durability durability);

  /// Writes and fdatasyncs everything staged. On return, every append
  /// that had been issued is durable.
  util::Status Flush();

  /// Flushes, seals the active segment and opens the next one. Returns
  /// the *cut LSN*: the last LSN in sealed segments; every record with
  /// LSN <= cut is in a sealed segment, every later one is not.
  util::Result<uint64_t> Rotate();

  /// Unlinks sealed segments all of whose records have
  /// LSN <= min(`lsn`, every retainer's LSN). The active segment is
  /// never dropped. Called by the checkpointer with its cut LSN once
  /// the checkpoint image is durable.
  util::Status DropSegmentsBelow(uint64_t lsn);

  /// Durable records with LSN in (`after_lsn`, LastDurableLsn()],
  /// stopping after ~`max_bytes` of payload. Serves replica tailing;
  /// never returns a record that could vanish in a crash.
  util::Result<std::vector<WalRecord>> ReadAfter(uint64_t after_lsn,
                                                 size_t max_bytes);

  /// A replication slot (lite): while alive, DropSegmentsBelow keeps
  /// every record with LSN > the retainer's LSN, so a tailing replica
  /// can always resume. Advance it as the replica acknowledges.
  /// Must not outlive the WalWriter.
  class Retainer {
   public:
    ~Retainer();
    Retainer(const Retainer&) = delete;
    Retainer& operator=(const Retainer&) = delete;

    /// Raises the retained LSN (never lowers it).
    void Advance(uint64_t lsn);

   private:
    friend class WalWriter;
    Retainer(WalWriter* writer, uint64_t id) : writer_(writer), id_(id) {}
    WalWriter* writer_;
    uint64_t id_;
  };

  /// Registers a retainer at `start_lsn` (0 retains everything).
  std::shared_ptr<Retainer> CreateRetainer(uint64_t start_lsn);

  /// Lowest LSN any retainer still needs; UINT64_MAX with no retainers.
  uint64_t RetainedFloor();

  uint64_t LastAppendedLsn();
  uint64_t LastDurableLsn();
  Counters counters();
  const std::string& base_path() const { return base_path_; }

  /// Installs the database's wait profile so commit-path blocking
  /// publishes wait events: the inline write+fdatasync as `wal_fsync`,
  /// a group-commit follower's wait for its batch as
  /// `wal_group_commit`. Set once right after Open, before the writer
  /// is shared (null = no publication).
  void SetWaitProfile(obs::WaitProfile* profile) { wait_profile_ = profile; }

 private:
  explicit WalWriter(std::string base_path, Options opts)
      : base_path_(std::move(base_path)), opts_(opts) {}

  void FlusherLoop();

  /// The swap-write-sync cycle. Caller holds `io_mu_`. No-op when
  /// nothing is staged (then everything staged is already durable —
  /// see the io_mu_ invariant in the .cc).
  util::Status FlushLocked(std::unique_lock<std::mutex>& io_lock);

  /// Seals the active segment and opens the next. Caller holds
  /// `io_mu_` and has just flushed.
  util::Status RotateLocked();

  const std::string base_path_;
  const Options opts_;
  /// Wait-event publication target (owned by the Database; set once
  /// after Open, before concurrent appends).
  obs::WaitProfile* wait_profile_ = nullptr;

  // --- file state, guarded by io_mu_ ---
  std::mutex io_mu_;
  int fd_ = -1;
  uint64_t active_seq_ = 0;
  size_t active_bytes_ = 0;       // valid bytes in the active segment
  uint64_t file_first_lsn_ = 0;   // first/last record *written* to it
  uint64_t file_last_lsn_ = 0;

  // --- staging state, guarded by mu_ ---
  std::mutex mu_;
  std::condition_variable cv_flusher_;  // work for the flusher
  std::condition_variable cv_durable_;  // durable LSN advanced
  std::string pending_;                 // encoded, not yet written
  size_t pending_count_ = 0;
  uint64_t pending_first_lsn_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t last_staged_lsn_ = 0;
  uint64_t last_durable_lsn_ = 0;
  util::Status io_error_;  // sticky first failure
  bool stop_ = false;
  Counters counters_;
  std::vector<SegmentInfo> sealed_;  // sealed segments, ascending seq
  std::string active_path_;          // mirror of the io-side active segment
  std::map<uint64_t, uint64_t> retained_;  // retainer id -> LSN
  uint64_t next_retainer_id_ = 1;

  std::thread flusher_;
};

}  // namespace exodus::wal

#endif  // EXODUS_WAL_WAL_WRITER_H_

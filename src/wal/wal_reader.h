#ifndef EXODUS_WAL_WAL_READER_H_
#define EXODUS_WAL_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "wal/wal_format.h"

namespace exodus::wal {

/// Per-segment summary produced by a scan.
struct SegmentInfo {
  uint64_t seq = 0;
  std::string path;
  uint64_t first_lsn = 0;  ///< 0 when the segment holds no records.
  uint64_t last_lsn = 0;   ///< 0 when the segment holds no records.
  size_t valid_bytes = 0;  ///< Bytes of CRC-valid records (tail excluded).
};

/// The result of scanning a WAL.
struct ReadResult {
  std::vector<WalRecord> records;    ///< All valid records, LSN order.
  std::vector<SegmentInfo> segments; ///< One entry per segment file, in order.
  bool tail_torn = false;  ///< The newest segment ended in a partial record.
  uint64_t last_lsn = 0;   ///< LSN of the final record; 0 when empty.
};

/// Torn-tail-tolerant WAL scanner.
///
/// Strictness is positional: a crash can only tear the *end of the
/// newest* segment, so an invalid record there is silently discarded
/// (`tail_torn` is set and `valid_bytes` of the final SegmentInfo says
/// where the good prefix ends — `WalWriter::Open` truncates to it
/// before appending). An invalid record anywhere else — mid-file CRC
/// mismatch, garbage between records, a non-final segment that does
/// not parse to its last byte — is reported as an IoError, never
/// skipped. LSNs must increase by exactly 1 across the whole stream
/// (they survive segment boundaries); a break is corruption.
class WalReader {
 public:
  /// Scans every segment of the WAL at `base_path`.
  ///
  /// A WAL with no segment files yields an empty, OK result.
  static util::Result<ReadResult> ReadAll(const std::string& base_path);
};

}  // namespace exodus::wal

#endif  // EXODUS_WAL_WAL_READER_H_

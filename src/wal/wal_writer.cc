#include "wal/wal_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/wait_event.h"

namespace exodus::wal {

using util::Result;
using util::Status;

// Durability invariant that makes the ride-along logic sound: bytes that
// are staged but not yet durable live either in `pending_` or in a batch
// being written by the current holder of `io_mu_`. So whenever a thread
// holds `io_mu_` and finds `pending_` empty, everything ever staged is
// already durable — which is why FlushLocked can no-op there, and why a
// kSync append is durable as soon as its own FlushLocked returns.

namespace {

Status WriteFully(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to WAL segment '" + path +
                             "' failed: " + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& base_path, uint64_t min_next_lsn, Options opts) {
  EXODUS_ASSIGN_OR_RETURN(ReadResult scan, WalReader::ReadAll(base_path));

  std::unique_ptr<WalWriter> w(new WalWriter(base_path, opts));

  if (!scan.segments.empty()) {
    const SegmentInfo& last = scan.segments.back();
    if (scan.tail_torn) {
      // Cut the partial record off before appending; otherwise the next
      // append would bury garbage mid-stream where readers treat it as
      // corruption rather than a torn tail.
      if (::truncate(last.path.c_str(),
                     static_cast<off_t>(last.valid_bytes)) != 0) {
        return Status::IoError("cannot truncate torn WAL tail in '" +
                               last.path + "': " + std::strerror(errno));
      }
    }
    w->active_seq_ = last.seq;
    w->active_bytes_ = last.valid_bytes;
    w->file_first_lsn_ = last.first_lsn;
    w->file_last_lsn_ = last.last_lsn;
    w->sealed_.assign(scan.segments.begin(), scan.segments.end() - 1);
  }

  w->active_path_ = SegmentPath(base_path, w->active_seq_);
  w->fd_ = ::open(w->active_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                  0644);
  if (w->fd_ < 0) {
    return Status::IoError("cannot open WAL segment '" + w->active_path_ +
                           "' for append: " + std::strerror(errno));
  }
  if (scan.segments.empty()) {
    // Freshly created — make the directory entry durable too.
    EXODUS_RETURN_IF_ERROR(SyncParentDir(w->active_path_));
  }

  const uint64_t resume = scan.last_lsn + 1;
  w->next_lsn_ = resume > min_next_lsn ? resume : min_next_lsn;
  // Records already in the file survived to be read; treat them as the
  // durable baseline.
  w->last_staged_lsn_ = w->next_lsn_ - 1;
  w->last_durable_lsn_ = w->next_lsn_ - 1;

  w->flusher_ = std::thread(&WalWriter::FlusherLoop, w.get());
  return w;
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_flusher_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::FlusherLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_flusher_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_ && pending_.empty()) return;
      if (!io_error_.ok()) {
        if (stop_) return;
        // Nothing useful to do; wake committers and idle until stop.
        cv_durable_.notify_all();
        cv_flusher_.wait(lock, [this] { return stop_; });
        return;
      }
    }
    std::unique_lock<std::mutex> io_lock(io_mu_);
    (void)FlushLocked(io_lock);  // failure recorded in io_error_
  }
}

Status WalWriter::FlushLocked(std::unique_lock<std::mutex>& io_lock) {
  (void)io_lock;  // asserts intent: caller holds io_mu_
  std::string batch;
  size_t batch_count = 0;
  uint64_t batch_first = 0;
  uint64_t batch_last = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!io_error_.ok()) return io_error_;
    if (pending_.empty()) return Status::OK();  // all staged is durable
    batch.swap(pending_);
    batch_count = pending_count_;
    batch_first = pending_first_lsn_;
    batch_last = last_staged_lsn_;
    pending_count_ = 0;
    pending_first_lsn_ = 0;
  }

  Status st;
  {
    // The write+fdatasync is the durability stall of a leader / kSync
    // committer; on the flusher thread no slot is bound, so only the
    // cumulative series move.
    obs::WaitEventGuard wait(wait_profile_, obs::WaitEvent::kWalFsync);
    st = WriteFully(fd_, batch.data(), batch.size(), active_path_);
    if (st.ok() && ::fdatasync(fd_) != 0) {
      st = Status::IoError("fdatasync of WAL segment '" + active_path_ +
                           "' failed: " + std::strerror(errno));
    }
  }

  if (st.ok()) {
    active_bytes_ += batch.size();
    if (file_first_lsn_ == 0) file_first_lsn_ = batch_first;
    file_last_lsn_ = batch_last;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok()) {
      last_durable_lsn_ = batch_last;
      counters_.fsyncs += 1;
      counters_.flush_batches += 1;
      counters_.batch_records += batch_count;
    } else if (io_error_.ok()) {
      io_error_ = st;
    }
  }
  cv_durable_.notify_all();

  if (st.ok() && active_bytes_ >= opts_.segment_bytes) {
    st = RotateLocked();
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (io_error_.ok()) io_error_ = st;
    }
  }
  return st;
}

Status WalWriter::RotateLocked() {
  // Caller holds io_mu_ and has flushed, so the active segment's file
  // content is complete and durable.
  ::close(fd_);
  fd_ = -1;

  SegmentInfo sealed;
  sealed.seq = active_seq_;
  sealed.path = active_path_;
  sealed.first_lsn = file_first_lsn_;
  sealed.last_lsn = file_last_lsn_;
  sealed.valid_bytes = active_bytes_;

  const uint64_t next_seq = active_seq_ + 1;
  const std::string next_path = SegmentPath(base_path_, next_seq);
  const int fd = ::open(next_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create WAL segment '" + next_path +
                           "': " + std::strerror(errno));
  }
  EXODUS_RETURN_IF_ERROR(SyncParentDir(next_path));

  fd_ = fd;
  active_seq_ = next_seq;
  active_bytes_ = 0;
  file_first_lsn_ = 0;
  file_last_lsn_ = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed_.push_back(std::move(sealed));
    active_path_ = next_path;
    counters_.rotations += 1;
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(RecordType type, const std::string& payload,
                                   Durability durability) {
  if (payload.size() > kMaxRecordPayload) {
    return Status::InvalidArgument("WAL record payload too large (" +
                                   std::to_string(payload.size()) + " bytes)");
  }
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!io_error_.ok()) return io_error_;
    lsn = next_lsn_++;
    EncodeRecord(lsn, type, payload, &pending_);
    pending_count_ += 1;
    if (pending_first_lsn_ == 0) pending_first_lsn_ = lsn;
    last_staged_lsn_ = lsn;
    counters_.appends += 1;
  }

  switch (durability) {
    case Durability::kAsync:
      cv_flusher_.notify_one();
      return lsn;

    case Durability::kGroup: {
      // Leader-follower group commit: the committer that finds the I/O
      // mutex free becomes the batch leader and flushes inline, taking
      // down every record staged so far with one fdatasync. Committers
      // that find a flush in flight are followers: they wake the
      // flusher thread (in case the in-flight batch was swapped out
      // before they staged) and wait until a batch covers them. The
      // inline leader saves the two context switches per batch that a
      // flusher-thread handoff would cost.
      std::unique_lock<std::mutex> io_lock(io_mu_, std::try_to_lock);
      if (io_lock.owns_lock()) {
        EXODUS_RETURN_IF_ERROR(FlushLocked(io_lock));
        return lsn;
      }
      cv_flusher_.notify_one();
      obs::WaitEventGuard wait(wait_profile_,
                               obs::WaitEvent::kWalGroupCommit);
      std::unique_lock<std::mutex> lock(mu_);
      cv_durable_.wait(lock, [this, lsn] {
        return last_durable_lsn_ >= lsn || !io_error_.ok();
      });
      if (!io_error_.ok()) return io_error_;
      return lsn;
    }

    case Durability::kSync: {
      std::unique_lock<std::mutex> io_lock(io_mu_);
      // Our record is either still pending (this flush takes it down
      // with one fdatasync, ride-along included) or was already written
      // and synced by an earlier io_mu_ holder — see the invariant at
      // the top of this file. Either way it is durable on OK return.
      EXODUS_RETURN_IF_ERROR(FlushLocked(io_lock));
      return lsn;
    }
  }
  return Status::Internal("unreachable durability mode");
}

Status WalWriter::Flush() {
  std::unique_lock<std::mutex> io_lock(io_mu_);
  return FlushLocked(io_lock);
}

Result<uint64_t> WalWriter::Rotate() {
  std::unique_lock<std::mutex> io_lock(io_mu_);
  EXODUS_RETURN_IF_ERROR(FlushLocked(io_lock));
  const uint64_t cut = file_last_lsn_;
  EXODUS_RETURN_IF_ERROR(RotateLocked());
  return cut;
}

Status WalWriter::DropSegmentsBelow(uint64_t lsn) {
  std::unique_lock<std::mutex> io_lock(io_mu_);
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t floor = lsn;
    for (const auto& [id, retained] : retained_) {
      (void)id;
      if (retained < floor) floor = retained;
    }
    auto it = sealed_.begin();
    while (it != sealed_.end() && it->last_lsn <= floor) {
      doomed.push_back(it->path);
      it = sealed_.erase(it);
    }
  }
  for (const std::string& path : doomed) {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("cannot unlink WAL segment '" + path +
                             "': " + std::strerror(errno));
    }
  }
  if (!doomed.empty()) {
    EXODUS_RETURN_IF_ERROR(SyncParentDir(doomed.front()));
  }
  return Status::OK();
}

Result<std::vector<WalRecord>> WalWriter::ReadAfter(uint64_t after_lsn,
                                                    size_t max_bytes) {
  uint64_t durable = 0;
  std::vector<std::string> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!io_error_.ok()) return io_error_;
    durable = last_durable_lsn_;
    for (const SegmentInfo& s : sealed_) {
      if (s.last_lsn > after_lsn) candidates.push_back(s.path);
    }
    candidates.push_back(active_path_);
  }

  std::vector<WalRecord> out;
  size_t bytes = 0;
  for (const std::string& path : candidates) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;  // raced a checkpoint drop; later files cover
    std::string content;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
    std::fclose(f);

    size_t pos = 0;
    WalRecord rec;
    // Lenient decode: the active segment may end mid-write while we
    // read it; everything past the durable LSN is excluded anyway.
    while (pos < content.size() && DecodeRecord(content, &pos, &rec)) {
      if (rec.lsn > durable) break;
      if (rec.lsn <= after_lsn) continue;
      bytes += rec.payload.size() + kRecordHeaderBytes;
      out.push_back(std::move(rec));
      if (bytes >= max_bytes) return out;
    }
  }
  return out;
}

WalWriter::Retainer::~Retainer() {
  std::lock_guard<std::mutex> lock(writer_->mu_);
  writer_->retained_.erase(id_);
}

void WalWriter::Retainer::Advance(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(writer_->mu_);
  uint64_t& cur = writer_->retained_[id_];
  if (lsn > cur) cur = lsn;
}

std::shared_ptr<WalWriter::Retainer> WalWriter::CreateRetainer(
    uint64_t start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_retainer_id_++;
  retained_[id] = start_lsn;
  return std::shared_ptr<Retainer>(new Retainer(this, id));
}

uint64_t WalWriter::RetainedFloor() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t floor = UINT64_MAX;
  for (const auto& [id, lsn] : retained_) {
    (void)id;
    if (lsn < floor) floor = lsn;
  }
  return floor;
}

uint64_t WalWriter::LastAppendedLsn() {
  std::lock_guard<std::mutex> lock(mu_);
  return last_staged_lsn_;
}

uint64_t WalWriter::LastDurableLsn() {
  std::lock_guard<std::mutex> lock(mu_);
  return last_durable_lsn_;
}

WalWriter::Counters WalWriter::counters() {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace exodus::wal

#include "auth/auth.h"

namespace exodus::auth {

using util::Result;
using util::Status;

Result<Privilege> ParsePrivilege(const std::string& name) {
  if (name == "retrieve") return Privilege::kRetrieve;
  if (name == "append") return Privilege::kAppend;
  if (name == "delete") return Privilege::kDelete;
  if (name == "replace") return Privilege::kReplace;
  if (name == "execute") return Privilege::kExecute;
  return Status::InvalidArgument("unknown privilege '" + name + "'");
}

const char* PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kRetrieve:
      return "retrieve";
    case Privilege::kAppend:
      return "append";
    case Privilege::kDelete:
      return "delete";
    case Privilege::kReplace:
      return "replace";
    case Privilege::kExecute:
      return "execute";
  }
  return "?";
}

AuthManager::AuthManager() {
  users_.insert(kDba);
  groups_[kPublicGroup] = {};
}

Status AuthManager::CreateUser(const std::string& name) {
  if (!users_.insert(name).second) {
    return Status::AlreadyExists("user '" + name + "' already exists");
  }
  return Status::OK();
}

Status AuthManager::CreateGroup(const std::string& name) {
  if (groups_.count(name)) {
    return Status::AlreadyExists("group '" + name + "' already exists");
  }
  groups_[name] = {};
  return Status::OK();
}

Status AuthManager::AddUserToGroup(const std::string& user,
                                   const std::string& group) {
  if (!users_.count(user)) {
    return Status::NotFound("no user named '" + user + "'");
  }
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return Status::NotFound("no group named '" + group + "'");
  }
  it->second.insert(user);
  return Status::OK();
}

bool AuthManager::UserExists(const std::string& name) const {
  return users_.count(name) > 0;
}

bool AuthManager::GroupExists(const std::string& name) const {
  return groups_.count(name) > 0;
}

Status AuthManager::Grant(const std::string& object, Privilege priv,
                          const std::string& principal) {
  if (!users_.count(principal) && !groups_.count(principal)) {
    return Status::NotFound("no user or group named '" + principal + "'");
  }
  grants_[object][priv].insert(principal);
  return Status::OK();
}

Status AuthManager::Revoke(const std::string& object, Privilege priv,
                           const std::string& principal) {
  auto oit = grants_.find(object);
  if (oit != grants_.end()) {
    auto pit = oit->second.find(priv);
    if (pit != oit->second.end() && pit->second.erase(principal) > 0) {
      return Status::OK();
    }
  }
  return Status::NotFound("no matching grant of " +
                          std::string(PrivilegeName(priv)) + " on '" + object +
                          "' to '" + principal + "'");
}

bool AuthManager::Check(const std::string& user, const std::string& object,
                        Privilege priv, const std::string& creator) const {
  if (user == kDba || user == creator) return true;
  auto oit = grants_.find(object);
  if (oit == grants_.end()) return false;
  auto pit = oit->second.find(priv);
  if (pit == oit->second.end()) return false;
  const std::set<std::string>& principals = pit->second;
  if (principals.count(user)) return true;
  if (principals.count(kPublicGroup)) return true;
  for (const auto& [group, members] : groups_) {
    if (members.count(user) && principals.count(group)) return true;
  }
  return false;
}

void AuthManager::DropObject(const std::string& object) {
  grants_.erase(object);
}

std::vector<std::string> AuthManager::GroupsOf(const std::string& user) const {
  std::vector<std::string> out;
  for (const auto& [group, members] : groups_) {
    if (members.count(user)) out.push_back(group);
  }
  return out;
}

}  // namespace exodus::auth

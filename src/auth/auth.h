#ifndef EXODUS_AUTH_AUTH_H_
#define EXODUS_AUTH_AUTH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace exodus::auth {

/// Privileges that can be granted on database objects (named extents,
/// EXCESS functions, procedures). `kExecute` applies to functions and
/// procedures; the others to named objects.
enum class Privilege {
  kRetrieve,
  kAppend,
  kDelete,
  kReplace,
  kExecute,
};

/// Parses a privilege name ("retrieve", "append", ...). "all" is handled
/// by the caller (expands to every privilege).
util::Result<Privilege> ParsePrivilege(const std::string& name);
const char* PrivilegeName(Privilege p);

/// Authorization manager in the style of System R [Cham75] and the IDM
/// protection system [IDM500] (paper §4.2.3): individual users, user
/// groups, and a built-in all-users group ("public"). Grants attach
/// (principal, privilege) pairs to named objects. The creator of an
/// object holds every privilege implicitly.
///
/// Data abstraction (paper §4.2.3): granting only `execute` on functions
/// of a type — and no direct privileges on the underlying extents —
/// makes the schema type an abstract data type, because EXCESS functions
/// and procedures run with their *definer's* rights.
class AuthManager {
 public:
  /// Name of the built-in all-users group.
  static constexpr const char* kPublicGroup = "public";
  /// Name of the built-in superuser / default session user.
  static constexpr const char* kDba = "dba";

  AuthManager();

  util::Status CreateUser(const std::string& name);
  util::Status CreateGroup(const std::string& name);
  util::Status AddUserToGroup(const std::string& user,
                              const std::string& group);

  bool UserExists(const std::string& name) const;
  bool GroupExists(const std::string& name) const;

  /// Grants `priv` on `object` to `principal` (user or group). Only the
  /// object's creator or the dba may grant; the caller checks that via
  /// CanGrant().
  util::Status Grant(const std::string& object, Privilege priv,
                     const std::string& principal);
  util::Status Revoke(const std::string& object, Privilege priv,
                      const std::string& principal);

  /// True if `user` holds `priv` on `object`, directly, via a group, via
  /// the public group, by being the object's creator, or by being dba.
  bool Check(const std::string& user, const std::string& object,
             Privilege priv, const std::string& creator) const;

  /// Removes all grants on `object` (when the object is dropped).
  void DropObject(const std::string& object);

  const std::set<std::string>& users() const { return users_; }
  /// Groups a user belongs to (excluding the implicit public group).
  std::vector<std::string> GroupsOf(const std::string& user) const;

 private:
  std::set<std::string> users_;
  std::map<std::string, std::set<std::string>> groups_;  // group -> members
  // object -> privilege -> principals
  std::map<std::string, std::map<Privilege, std::set<std::string>>> grants_;
};

}  // namespace exodus::auth

#endif  // EXODUS_AUTH_AUTH_H_

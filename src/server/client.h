#ifndef EXODUS_SERVER_CLIENT_H_
#define EXODUS_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "object/value.h"
#include "server/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::server {

/// A prepared statement living on the server, addressed by handle.
struct RemoteStatement {
  uint32_t handle = 0;
  uint32_t param_count = 0;
};

/// A blocking client for the EXCESS wire protocol: one TCP connection,
/// one server-side Session. Used by the `excess_client` binary and by
/// the shell's `\connect` mode; also the programmatic way to reach a
/// remote database:
///
///   auto client = Client::Connect("127.0.0.1", 4077, "carey");
///   auto rows = (*client)->Query("retrieve (E.name) from E in Employees");
///   for (const auto& row : rows->rows) ...
///
/// Not thread-safe: the protocol is strictly request/response, so use
/// one Client per thread. Every method reports a lost server as
/// IoError; app-level failures arrive as the original status code the
/// server-side statement produced.
class Client {
 public:
  /// Connects and performs the HELLO handshake as `user`.
  static util::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      const std::string& user = "dba");

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes statement text (possibly a multi-statement program);
  /// returns the last statement's result table.
  util::Result<RowsPayload> Query(const std::string& text);

  /// Prepares a statement with `$n` parameters on the server.
  util::Result<RemoteStatement> Prepare(const std::string& text);

  /// Binds `params` positionally ($1..$n) and executes a prepared
  /// handle. Parameters must be scalars (null/int/float/bool/string).
  util::Result<RowsPayload> Execute(
      const RemoteStatement& stmt,
      const std::vector<object::Value>& params = {});

  /// Drops a server-side prepared statement.
  util::Status CloseStatement(const RemoteStatement& stmt);

  /// Server + connection counters (the \stats command).
  util::Result<StatsPayload> Stats();

  /// The server's full metrics registry as Prometheus text exposition
  /// (the \metrics command) — plan-cache, per-operator, buffer-pool,
  /// statement and server series.
  util::Result<std::string> Metrics();

  /// Live per-session activity (the \activity command): what every
  /// session is executing right now, its phase, current wait event and
  /// row/morsel progress. Answered by the server without queuing behind
  /// running statements.
  util::Result<ActivityPayload> Activity();

  /// One WAL_TAIL round against a journaling primary: either the next
  /// batch of durable records after `after_lsn` (`records`), or — when
  /// the primary's checkpoints have already dropped that part of the
  /// WAL — a full snapshot bootstrap (`snapshot`). The replica loads
  /// the snapshot image and resumes tailing from its snapshot_lsn.
  struct WalTailReply {
    bool is_snapshot = false;
    WalSnapshotPayload snapshot;
    WalRecordsPayload records;
  };
  util::Result<WalTailReply> WalTail(uint64_t after_lsn);

  /// Sends BYE (best effort) and closes the socket. Idempotent; the
  /// destructor calls it.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends one request and reads one response frame; decodes ERROR
  /// responses into their original status. `max_payload` caps the
  /// reply frame (WAL_TAIL raises it for snapshot bootstraps).
  util::Result<Frame> RoundTrip(MsgType type, const std::string& body,
                                uint32_t max_payload = kMaxFramePayload);

  int fd_ = -1;
};

/// Splits "host:port" (host optional — ":4077" and "4077" mean
/// loopback). Fails on an unparsable port.
util::Status ParseHostPort(const std::string& spec, std::string* host,
                           uint16_t* port);

}  // namespace exodus::server

#endif  // EXODUS_SERVER_CLIENT_H_

#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace exodus::server {

using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

bool IsRequestType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kActivity);
}

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

Result<uint8_t> WireReader::U8() {
  if (pos_ + 1 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u8");
  }
  return static_cast<uint8_t>(buf_[pos_++]);
}

Result<uint32_t> WireReader::U32() {
  if (pos_ + 4 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<uint8_t>(buf_[pos_++]);
  }
  return v;
}

Result<uint64_t> WireReader::U64() {
  if (pos_ + 8 > buf_.size()) {
    return Status::InvalidArgument("truncated frame: expected u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(buf_[pos_++]);
  }
  return v;
}

Result<int64_t> WireReader::I64() {
  EXODUS_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::F64() {
  EXODUS_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::Str() {
  EXODUS_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > buf_.size()) {
    return Status::InvalidArgument("truncated frame: string length " +
                                   std::to_string(len) +
                                   " exceeds remaining payload");
  }
  std::string s = buf_.substr(pos_, len);
  pos_ += len;
  return s;
}

// ---------------------------------------------------------------------------
// Scalar parameter values
// ---------------------------------------------------------------------------

namespace {

enum : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValFloat = 2,
  kValBool = 3,
  kValString = 4,
};

}  // namespace

Status PutValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kNull:
      PutU8(kValNull, out);
      return Status::OK();
    case ValueKind::kInt:
      PutU8(kValInt, out);
      PutI64(v.AsInt(), out);
      return Status::OK();
    case ValueKind::kFloat:
      PutU8(kValFloat, out);
      PutF64(v.AsFloat(), out);
      return Status::OK();
    case ValueKind::kBool:
      PutU8(kValBool, out);
      PutU8(v.AsBool() ? 1 : 0, out);
      return Status::OK();
    case ValueKind::kString:
      PutU8(kValString, out);
      PutString(v.AsString(), out);
      return Status::OK();
    default:
      return Status::InvalidArgument(
          "only scalar parameter values (null/int/float/bool/string) can "
          "travel on the wire");
  }
}

Result<Value> GetValue(WireReader* r) {
  EXODUS_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (tag) {
    case kValNull:
      return Value::Null();
    case kValInt: {
      EXODUS_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Int(v);
    }
    case kValFloat: {
      EXODUS_ASSIGN_OR_RETURN(double v, r->F64());
      return Value::Float(v);
    }
    case kValBool: {
      EXODUS_ASSIGN_OR_RETURN(uint8_t v, r->U8());
      return Value::Bool(v != 0);
    }
    case kValString: {
      EXODUS_ASSIGN_OR_RETURN(std::string v, r->Str());
      return Value::String(std::move(v));
    }
    default:
      return Status::InvalidArgument("unknown wire value tag " +
                                     std::to_string(tag));
  }
}

// ---------------------------------------------------------------------------
// RowsPayload
// ---------------------------------------------------------------------------

void RowsPayload::EncodeTo(std::string* out) const {
  PutU32(static_cast<uint32_t>(columns.size()), out);
  for (const std::string& c : columns) PutString(c, out);
  PutU32(static_cast<uint32_t>(rows.size()), out);
  for (const auto& row : rows) {
    PutU32(static_cast<uint32_t>(row.size()), out);
    for (const std::string& cell : row) PutString(cell, out);
  }
  PutString(message, out);
  PutU64(affected, out);
}

Result<RowsPayload> RowsPayload::Decode(WireReader* r) {
  RowsPayload p;
  EXODUS_ASSIGN_OR_RETURN(uint32_t ncols, r->U32());
  p.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    EXODUS_ASSIGN_OR_RETURN(std::string c, r->Str());
    p.columns.push_back(std::move(c));
  }
  EXODUS_ASSIGN_OR_RETURN(uint32_t nrows, r->U32());
  p.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    EXODUS_ASSIGN_OR_RETURN(uint32_t ncells, r->U32());
    std::vector<std::string> row;
    row.reserve(ncells);
    for (uint32_t j = 0; j < ncells; ++j) {
      EXODUS_ASSIGN_OR_RETURN(std::string cell, r->Str());
      row.push_back(std::move(cell));
    }
    p.rows.push_back(std::move(row));
  }
  EXODUS_ASSIGN_OR_RETURN(p.message, r->Str());
  EXODUS_ASSIGN_OR_RETURN(p.affected, r->U64());
  return p;
}

std::string RowsPayload::ToString() const {
  std::string out;
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) out += " | ";
      out += columns[i];
    }
    out += "\n";
    for (const auto& row : rows) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += " | ";
        out += row[i];
      }
      out += "\n";
    }
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// ErrorPayload
// ---------------------------------------------------------------------------

void ErrorPayload::EncodeTo(std::string* out) const {
  PutU8(code, out);
  PutString(message, out);
  PutU32(line, out);
  PutU32(column, out);
}

Result<ErrorPayload> ErrorPayload::Decode(WireReader* r) {
  ErrorPayload p;
  EXODUS_ASSIGN_OR_RETURN(p.code, r->U8());
  EXODUS_ASSIGN_OR_RETURN(p.message, r->Str());
  EXODUS_ASSIGN_OR_RETURN(p.line, r->U32());
  EXODUS_ASSIGN_OR_RETURN(p.column, r->U32());
  return p;
}

Status ErrorPayload::ToStatus() const {
  util::StatusCode sc = static_cast<util::StatusCode>(code);
  if (sc == util::StatusCode::kOk) sc = util::StatusCode::kInternal;
  return Status(sc, message);
}

ErrorPayload ErrorPayload::FromStatus(const Status& s) {
  ErrorPayload p;
  p.code = static_cast<uint8_t>(s.code());
  p.message = s.message();
  // Parser errors carry "... at line L, column C"; surface the position
  // as structured fields so clients can point at the offending token.
  const std::string& m = p.message;
  size_t at = m.rfind("line ");
  if (at != std::string::npos) {
    const char* cp = m.c_str() + at + 5;
    char* end = nullptr;
    unsigned long line = std::strtoul(cp, &end, 10);
    if (end != cp && line > 0) {
      size_t col_at = m.find("column ", static_cast<size_t>(end - m.c_str()));
      if (col_at != std::string::npos) {
        const char* cc = m.c_str() + col_at + 7;
        char* cend = nullptr;
        unsigned long col = std::strtoul(cc, &cend, 10);
        if (cend != cc && col > 0) {
          p.line = static_cast<uint32_t>(line);
          p.column = static_cast<uint32_t>(col);
        }
      }
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// StatsPayload
// ---------------------------------------------------------------------------

void StatsPayload::EncodeTo(std::string* out) const {
  PutU64(connections_total, out);
  PutU64(connections_active, out);
  PutU64(queries_total, out);
  PutU64(errors_total, out);
  PutU64(p50_micros, out);
  PutU64(p99_micros, out);
  PutU64(cache_hits, out);
  PutU64(cache_misses, out);
  PutU64(cache_invalidations, out);
  PutU64(cache_evictions, out);
  PutU64(connection_queries, out);
  PutU64(connection_errors, out);
  PutU64(wal_last_lsn, out);
  PutU64(wal_durable_lsn, out);
  PutU64(wal_fsyncs_total, out);
  PutU64(replica_mode, out);
  PutU64(replica_applied_lsn, out);
  PutU64(replica_lag_records, out);
}

Result<StatsPayload> StatsPayload::Decode(WireReader* r) {
  StatsPayload p;
  EXODUS_ASSIGN_OR_RETURN(p.connections_total, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.connections_active, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.queries_total, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.errors_total, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.p50_micros, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.p99_micros, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.cache_hits, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.cache_misses, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.cache_invalidations, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.cache_evictions, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.connection_queries, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.connection_errors, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.wal_last_lsn, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.wal_durable_lsn, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.wal_fsyncs_total, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.replica_mode, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.replica_applied_lsn, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.replica_lag_records, r->U64());
  return p;
}

std::string StatsPayload::ToString() const {
  std::string out;
  out += "server: " + std::to_string(connections_active) + " active / " +
         std::to_string(connections_total) + " total connection(s), " +
         std::to_string(queries_total) + " quer(ies), " +
         std::to_string(errors_total) + " error(s)\n";
  out += "latency: p50 " + std::to_string(p50_micros) + "us, p99 " +
         std::to_string(p99_micros) + "us\n";
  out += "plan cache: " + std::to_string(cache_hits) + " hit(s), " +
         std::to_string(cache_misses) + " miss(es), " +
         std::to_string(cache_invalidations) + " invalidation(s), " +
         std::to_string(cache_evictions) + " eviction(s)\n";
  if (wal_last_lsn > 0 || wal_fsyncs_total > 0) {
    out += "durability: wal last " + std::to_string(wal_last_lsn) +
           ", durable " + std::to_string(wal_durable_lsn) + ", " +
           std::to_string(wal_fsyncs_total) + " fsync(s)\n";
  }
  if (replica_mode != 0) {
    out += "replica: applied lsn " + std::to_string(replica_applied_lsn) +
           ", lag " + std::to_string(replica_lag_records) + " record(s)\n";
  }
  out += "this connection: " + std::to_string(connection_queries) +
         " quer(ies), " + std::to_string(connection_errors) + " error(s)\n";
  return out;
}

// ---------------------------------------------------------------------------
// WAL replication payloads
// ---------------------------------------------------------------------------

void WalSnapshotPayload::EncodeTo(std::string* out) const {
  PutU64(snapshot_lsn, out);
  PutString(image, out);
}

Result<WalSnapshotPayload> WalSnapshotPayload::Decode(WireReader* r) {
  WalSnapshotPayload p;
  EXODUS_ASSIGN_OR_RETURN(p.snapshot_lsn, r->U64());
  EXODUS_ASSIGN_OR_RETURN(p.image, r->Str());
  return p;
}

void WalRecordsPayload::EncodeTo(std::string* out) const {
  PutU64(primary_durable_lsn, out);
  PutU32(static_cast<uint32_t>(records.size()), out);
  for (const wal::WalRecord& rec : records) {
    PutU64(rec.lsn, out);
    PutU8(static_cast<uint8_t>(rec.type), out);
    PutString(rec.payload, out);
  }
}

Result<WalRecordsPayload> WalRecordsPayload::Decode(WireReader* r) {
  WalRecordsPayload p;
  EXODUS_ASSIGN_OR_RETURN(p.primary_durable_lsn, r->U64());
  EXODUS_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  p.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    wal::WalRecord rec;
    EXODUS_ASSIGN_OR_RETURN(rec.lsn, r->U64());
    EXODUS_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    rec.type = static_cast<wal::RecordType>(type);
    EXODUS_ASSIGN_OR_RETURN(rec.payload, r->Str());
    p.records.push_back(std::move(rec));
  }
  return p;
}

void ActivityPayload::EncodeTo(std::string* out) const {
  PutU32(static_cast<uint32_t>(entries.size()), out);
  for (const Entry& e : entries) {
    PutU64(e.session_id, out);
    PutString(e.user, out);
    PutU8(e.active, out);
    PutU64(e.query_id, out);
    PutString(e.statement, out);
    PutU64(e.elapsed_us, out);
    PutString(e.phase, out);
    PutString(e.wait, out);
    PutU64(e.rows, out);
    PutU64(e.batches, out);
    PutU64(e.morsels_done, out);
    PutU64(e.morsels_total, out);
  }
}

Result<ActivityPayload> ActivityPayload::Decode(WireReader* r) {
  ActivityPayload p;
  EXODUS_ASSIGN_OR_RETURN(uint32_t count, r->U32());
  p.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    EXODUS_ASSIGN_OR_RETURN(e.session_id, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.user, r->Str());
    EXODUS_ASSIGN_OR_RETURN(e.active, r->U8());
    EXODUS_ASSIGN_OR_RETURN(e.query_id, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.statement, r->Str());
    EXODUS_ASSIGN_OR_RETURN(e.elapsed_us, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.phase, r->Str());
    EXODUS_ASSIGN_OR_RETURN(e.wait, r->Str());
    EXODUS_ASSIGN_OR_RETURN(e.rows, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.batches, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.morsels_done, r->U64());
    EXODUS_ASSIGN_OR_RETURN(e.morsels_total, r->U64());
    p.entries.push_back(std::move(e));
  }
  return p;
}

std::string ActivityPayload::ToString() const {
  if (entries.empty()) return "no sessions\n";
  std::string out;
  for (const Entry& e : entries) {
    out += "session " + std::to_string(e.session_id) + " [" + e.user + "] " +
           (e.active != 0 ? "active" : "idle");
    if (e.active == 0 && e.statement.empty()) {
      out += "\n";
      continue;
    }
    out += " #" + std::to_string(e.query_id);
    if (e.active != 0) {
      out += " " + std::to_string(e.elapsed_us) + "us";
      out += " phase=" + e.phase;
      if (!e.wait.empty()) out += " wait=" + e.wait;
    }
    out += " rows=" + std::to_string(e.rows);
    if (e.morsels_total > 0) {
      out += " morsels=" + std::to_string(e.morsels_done) + "/" +
             std::to_string(e.morsels_total);
    }
    if (!e.statement.empty()) out += "\n  " + e.statement;
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

namespace {

/// Writes all of buf, retrying on EINTR / partial writes. MSG_NOSIGNAL
/// turns a dead peer into EPIPE instead of killing the process.
Status WriteFully(int fd, const char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, buf + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::IoError("send wrote nothing");
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly len bytes. `*clean_eof` is set when the peer closed
/// before the first byte.
Status ReadFully(int fd, char* buf, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IoError("peer closed connection mid-frame");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, const std::string& body) {
  std::string frame;
  frame.reserve(5 + body.size());
  PutU32(static_cast<uint32_t>(body.size() + 1), &frame);
  PutU8(static_cast<uint8_t>(type), &frame);
  frame.append(body);
  return WriteFully(fd, frame.data(), frame.size());
}

Result<Frame> ReadFrame(int fd, uint32_t max_payload) {
  char header[4];
  bool clean_eof = false;
  Status st = ReadFully(fd, header, sizeof(header), &clean_eof);
  if (!st.ok()) {
    if (clean_eof) return Status::NotFound("peer disconnected");
    return st;
  }
  uint32_t len = 0;
  for (char c : header) len = (len << 8) | static_cast<uint8_t>(c);
  if (len == 0) {
    return Status::InvalidArgument("malformed frame: empty payload");
  }
  if (len > max_payload) {
    return Status::InvalidArgument("malformed frame: payload of " +
                                   std::to_string(len) +
                                   " bytes exceeds the protocol maximum");
  }
  std::string payload(len, '\0');
  EXODUS_RETURN_IF_ERROR(ReadFully(fd, payload.data(), len, nullptr));
  Frame f;
  f.type = static_cast<MsgType>(static_cast<uint8_t>(payload[0]));
  f.body = payload.substr(1);
  return f;
}

}  // namespace exodus::server

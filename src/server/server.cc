#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <utility>

#include "excess/database.h"
#include "excess/session.h"
#include "obs/wait_event.h"
#include "wal/wal_writer.h"

namespace exodus::server {

using excess::QueryResult;
using util::Result;
using util::Status;

namespace {

/// Payload budget of one WAL_RECORDS batch — well under the frame cap
/// even after framing overhead; a lagging replica just polls again.
constexpr size_t kWalTailBatchBytes = 4u << 20;  // 4 MiB

}  // namespace

// ---------------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------------

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  /// Set by the serving thread on exit; the acceptor reaps done
  /// connections so a long-lived server does not accumulate them.
  std::atomic<bool> done{false};
  std::unique_ptr<Session> session;
  std::map<uint32_t, std::unique_ptr<PreparedStatement>> prepared;
  uint32_t next_handle = 1;
  /// This connection's replication slot, created by its first WAL_TAIL
  /// and advanced by each subsequent one: while it lives, checkpoints
  /// keep every WAL record above the replica's acknowledged position.
  std::shared_ptr<wal::WalWriter::Retainer> retainer;
  /// Touched only by this connection's serving thread (directly or via
  /// the pool job it is blocked on).
  uint64_t queries = 0;
  uint64_t errors = 0;
};

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)), pool_(options_.workers) {
  // The registry hands out stable pointers and the Database outlives the
  // Server, so the counters can be resolved once here. Two servers on
  // one database share the same series — they are one database's load.
  obs::MetricsRegistry* metrics = db_->metrics();
  counters_.connections_total =
      metrics->GetCounter("exodus_server_connections_total");
  counters_.connections_active =
      metrics->GetGauge("exodus_server_connections_active");
  counters_.queries_total = metrics->GetCounter("exodus_server_queries_total");
  counters_.errors_total = metrics->GetCounter("exodus_server_errors_total");
  counters_.latency = metrics->GetHistogram("exodus_server_latency_us");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse bind address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError("bind " + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::IoError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second Stop still waits for the acceptor below via
    // joinable() checks; the destructor is the common second caller.
  }
  if (listen_fd_ >= 0) {
    // Wakes the blocking accept() (Linux returns EINVAL after shutdown
    // on a listening socket).
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // SHUT_RD makes the connection's next (or pending) frame read see a
    // clean EOF; the request it is executing right now still finishes
    // and its response still flushes through the write half.
    if (!conn->done.load(std::memory_order_acquire)) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  pool_.Shutdown();
  // Journal note: Database flushes every journal append before it
  // returns, so draining the in-flight statements above is all the
  // "flush" a graceful shutdown needs.
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    ReapConnections();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    counters_.connections_total->Increment();
    counters_.connections_active->Add(1);
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void Server::ReapConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Server::SendFrame(Connection* conn, MsgType type,
                         const std::string& body) {
  obs::WaitEventGuard wait(db_->wait_profile(),
                           obs::WaitEvent::kServerSend);
  return WriteFrame(conn->fd, type, body);
}

void Server::RunOnPool(std::function<void()> job) {
  std::promise<void> done;
  std::future<void> fut = done.get_future();
  bool submitted = pool_.Submit([&job, &done] {
    job();
    done.set_value();
  });
  if (!submitted) {
    job();  // pool draining (shutdown): run inline, still correct
    return;
  }
  fut.wait();
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

namespace {

void SendError(int fd, const Status& st) {
  ErrorPayload err = ErrorPayload::FromStatus(st);
  std::string body;
  err.EncodeTo(&body);
  (void)WriteFrame(fd, MsgType::kError, body);  // peer may be gone
}

void SendOk(int fd, const std::string& message) {
  std::string body;
  PutString(message, &body);
  (void)WriteFrame(fd, MsgType::kOk, body);
}

}  // namespace

void Server::ServeConnection(Connection* conn) {
  {
    // Every connection starts as the built-in dba until HELLO names a
    // user. CreateSession locks internally.
    auto session = db_->CreateSession();
    if (session.ok()) conn->session = std::move(*session);
  }
  if (conn->session == nullptr) {
    SendError(conn->fd, Status::Internal("cannot open a session"));
  } else {
    while (true) {
      Result<Frame> frame(Status::Internal("not read"));
      {
        // The connection thread blocking for the next request is the
        // `client_read` wait class. No statement is running on this
        // thread, so only the cumulative series move.
        obs::WaitEventGuard wait(db_->wait_profile(),
                                 obs::WaitEvent::kClientRead);
        frame = ReadFrame(conn->fd);
      }
      if (!frame.ok()) {
        // NotFound = the peer hung up between requests (normal). A
        // malformed or torn frame gets a best-effort error reply; both
        // close only this connection, never the server.
        if (frame.status().code() != util::StatusCode::kNotFound) {
          SendError(conn->fd, frame.status());
        }
        break;
      }
      if (!HandleFrame(conn, *frame)) break;
    }
  }
  ::close(conn->fd);
  conn->prepared.clear();
  conn->session.reset();
  counters_.connections_active->Add(-1);
  conn->done.store(true, std::memory_order_release);
}

bool Server::HandleFrame(Connection* conn, const Frame& frame) {
  WireReader r(frame.body);
  switch (frame.type) {
    case MsgType::kHello: {
      auto version = r.U8();
      auto user = version.ok() ? r.Str() : Result<std::string>(
                                               version.status());
      if (!user.ok()) {
        SendError(conn->fd, user.status());
        return false;
      }
      if (*version != kProtocolVersion) {
        SendError(conn->fd, Status::InvalidArgument(
                                "protocol version mismatch: server speaks " +
                                std::to_string(kProtocolVersion) +
                                ", client sent " + std::to_string(*version)));
        return false;
      }
      auto session = db_->CreateSession(*user);
      if (!session.ok()) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, session.status());
        return true;  // the old session (dba) stays usable
      }
      conn->prepared.clear();  // handles belong to the old session
      conn->session = std::move(*session);
      SendOk(conn->fd, "hello " + *user);
      return true;
    }

    case MsgType::kQuery: {
      auto text = r.Str();
      if (!text.ok()) {
        SendError(conn->fd, text.status());
        return false;
      }
      auto started = std::chrono::steady_clock::now();
      Result<std::vector<QueryResult>> results(
          std::vector<QueryResult>{});
      RowsPayload payload;
      bool ok = false;
      RunOnPool([&] {
        results = conn->session->ExecuteAll(*text);
        if (!results.ok()) return;
        ok = true;
        // A multi-statement program answers with its last statement's
        // result (the convention of Database::Execute). Formatting
        // resolves references through the heap; the session pins a
        // snapshot internally — other connections may be mutating.
        if (results->empty()) return;
        const QueryResult& last = results->back();
        payload.columns = last.columns;
        payload.message = last.message;
        payload.affected = last.affected;
        payload.rows = conn->session->FormatRows(last);
      });
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
      counters_.latency->Record(static_cast<uint64_t>(micros));
      ++conn->queries;
      counters_.queries_total->Increment();
      if (!ok) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, results.status());
        return true;
      }
      std::string body;
      payload.EncodeTo(&body);
      return SendFrame(conn, MsgType::kRows, body).ok();
    }

    case MsgType::kPrepare: {
      auto text = r.Str();
      if (!text.ok()) {
        SendError(conn->fd, text.status());
        return false;
      }
      Result<std::unique_ptr<PreparedStatement>> stmt(
          Status::Internal("not prepared"));
      RunOnPool([&] { stmt = conn->session->Prepare(*text); });
      if (!stmt.ok()) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, stmt.status());
        return true;
      }
      uint32_t handle = conn->next_handle++;
      int param_count = (*stmt)->param_count();
      conn->prepared[handle] = std::move(*stmt);
      std::string body;
      PutU32(handle, &body);
      PutU32(static_cast<uint32_t>(param_count), &body);
      return SendFrame(conn, MsgType::kPrepared, body).ok();
    }

    case MsgType::kExecute: {
      auto handle = r.U32();
      if (!handle.ok()) {
        SendError(conn->fd, handle.status());
        return false;
      }
      auto nparams = r.U32();
      if (!nparams.ok()) {
        SendError(conn->fd, nparams.status());
        return false;
      }
      std::vector<object::Value> params;
      params.reserve(*nparams);
      for (uint32_t i = 0; i < *nparams; ++i) {
        auto v = GetValue(&r);
        if (!v.ok()) {
          SendError(conn->fd, v.status());
          return false;
        }
        params.push_back(std::move(*v));
      }
      auto it = conn->prepared.find(*handle);
      if (it == conn->prepared.end()) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, Status::NotFound("no prepared statement #" +
                                             std::to_string(*handle)));
        return true;
      }
      PreparedStatement* stmt = it->second.get();
      auto started = std::chrono::steady_clock::now();
      Result<QueryResult> result(Status::Internal("not executed"));
      RowsPayload payload;
      bool ok = false;
      RunOnPool([&] {
        stmt->ClearBindings();
        for (size_t i = 0; i < params.size(); ++i) {
          Status st = stmt->Bind(static_cast<int>(i + 1),
                                 std::move(params[i]));
          if (!st.ok()) {
            result = st;
            return;
          }
        }
        result = stmt->Execute();
        if (!result.ok()) return;
        ok = true;
        payload.columns = result->columns;
        payload.message = result->message;
        payload.affected = result->affected;
        payload.rows = conn->session->FormatRows(*result);
      });
      auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
      counters_.latency->Record(static_cast<uint64_t>(micros));
      ++conn->queries;
      counters_.queries_total->Increment();
      if (!ok) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, result.status());
        return true;
      }
      std::string body;
      payload.EncodeTo(&body);
      return SendFrame(conn, MsgType::kRows, body).ok();
    }

    case MsgType::kCloseStmt: {
      auto handle = r.U32();
      if (!handle.ok()) {
        SendError(conn->fd, handle.status());
        return false;
      }
      conn->prepared.erase(*handle);
      SendOk(conn->fd, "closed");
      return true;
    }

    case MsgType::kStats: {
      StatsPayload stats = BuildStats(*conn);
      std::string body;
      stats.EncodeTo(&body);
      return SendFrame(conn, MsgType::kStatsReply, body).ok();
    }

    case MsgType::kMetrics: {
      // Pure atomic reads — no database lock, and no pool round-trip,
      // so a scrape never queues behind a long-running statement.
      std::string body;
      PutString(db_->metrics()->RenderPrometheus(), &body);
      return SendFrame(conn, MsgType::kMetricsReply, body).ok();
    }

    case MsgType::kActivity: {
      // Like kMetrics: answered on the connection thread, never through
      // the pool — an activity probe must work precisely when the pool
      // is saturated by the statements being introspected.
      ActivityPayload p;
      for (const obs::ActivityRecord& rec : db_->sessions()->Snapshot()) {
        ActivityPayload::Entry e;
        e.session_id = rec.session_id;
        e.user = rec.user;
        e.active = rec.active ? 1 : 0;
        e.query_id = rec.query_id;
        e.statement = rec.statement;
        e.elapsed_us = rec.elapsed_us;
        e.phase = obs::StmtPhaseName(rec.phase);
        if (rec.wait != obs::WaitEvent::kNone) {
          e.wait = obs::WaitEventName(rec.wait);
        }
        e.rows = rec.rows;
        e.batches = rec.batches;
        e.morsels_done = rec.morsels_done;
        e.morsels_total = rec.morsels_total;
        p.entries.push_back(std::move(e));
      }
      std::string body;
      p.EncodeTo(&body);
      return SendFrame(conn, MsgType::kActivityReply, body).ok();
    }

    case MsgType::kWalTail: {
      auto after = r.U64();
      if (!after.ok()) {
        SendError(conn->fd, after.status());
        return false;
      }
      wal::WalWriter* w = db_->wal();
      if (w == nullptr) {
        SendError(conn->fd,
                  Status::InvalidArgument(
                      "this server is not journaling; nothing to replicate"));
        return true;
      }
      // Register the replication slot before checking availability:
      // once the retainer exists, a concurrent checkpoint cannot drop
      // records above the replica's position, so a base at or below
      // `after` observed afterwards stays valid.
      bool need_snapshot = false;
      if (conn->retainer == nullptr) {
        conn->retainer = w->CreateRetainer(*after);
        need_snapshot = db_->wal_base_lsn() > *after;
        if (need_snapshot) conn->retainer.reset();
      } else {
        conn->retainer->Advance(*after);
      }
      if (need_snapshot) {
        // The replica predates the retained WAL: ship a checkpoint
        // image. Retried because a truncating checkpoint can land
        // between the image's cut and the slot registration.
        Result<WalSnapshotPayload> snap(Status::Internal("not built"));
        RunOnPool([&] {
          for (int attempt = 0; attempt < 3; ++attempt) {
            WalSnapshotPayload p;
            auto image = db_->ReplicaSnapshot(&p.snapshot_lsn);
            if (!image.ok()) {
              snap = image.status();
              return;
            }
            p.image = std::move(*image);
            conn->retainer = w->CreateRetainer(p.snapshot_lsn);
            if (db_->wal_base_lsn() <= p.snapshot_lsn) {
              snap = std::move(p);
              return;
            }
            conn->retainer.reset();
          }
          snap = Status::Internal(
              "checkpoint truncation keeps outpacing the bootstrap "
              "snapshot; retry");
        });
        if (!snap.ok()) {
          ++conn->errors;
          counters_.errors_total->Increment();
          SendError(conn->fd, snap.status());
          return true;
        }
        std::string body;
        snap->EncodeTo(&body);
        return SendFrame(conn, MsgType::kWalSnapshotReply, body).ok();
      }
      auto records = w->ReadAfter(*after, kWalTailBatchBytes);
      if (!records.ok()) {
        ++conn->errors;
        counters_.errors_total->Increment();
        SendError(conn->fd, records.status());
        return true;
      }
      WalRecordsPayload p;
      p.primary_durable_lsn = w->LastDurableLsn();
      p.records = std::move(*records);
      std::string body;
      p.EncodeTo(&body);
      return SendFrame(conn, MsgType::kWalRecordsReply, body).ok();
    }

    case MsgType::kBye:
      SendOk(conn->fd, "bye");
      return false;

    default:
      // An unknown type after a well-formed length prefix most likely
      // means the stream is out of sync — close rather than guess.
      SendError(conn->fd,
                Status::InvalidArgument(
                    "unknown request type " +
                    std::to_string(static_cast<uint8_t>(frame.type))));
      return false;
  }
}

StatsPayload Server::BuildStats(const Connection& conn) const {
  StatsPayload s;
  s.connections_total = counters_.connections_total->value();
  int64_t active = counters_.connections_active->value();
  s.connections_active = active > 0 ? static_cast<uint64_t>(active) : 0;
  s.queries_total = counters_.queries_total->value();
  s.errors_total = counters_.errors_total->value();
  s.p50_micros = counters_.latency->Percentile(0.50);
  s.p99_micros = counters_.latency->Percentile(0.99);
  excess::PlanCacheStats cache = db_->CacheStats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_invalidations = cache.invalidations;
  s.cache_evictions = cache.evictions;
  s.connection_queries = conn.queries;
  s.connection_errors = conn.errors;
  if (wal::WalWriter* w = db_->wal()) {
    s.wal_last_lsn = w->LastAppendedLsn();
    s.wal_durable_lsn = w->LastDurableLsn();
    s.wal_fsyncs_total = w->counters().fsyncs;
  }
  if (db_->read_only()) {
    // The replicator publishes its position as plain gauges on the
    // database's registry; GetGauge is idempotent, so reading them
    // before the replicator's first round just yields zeros.
    s.replica_mode = 1;
    obs::MetricsRegistry* metrics = db_->metrics();
    s.replica_applied_lsn = static_cast<uint64_t>(
        metrics->GetGauge("exodus_replica_last_applied_lsn")->value());
    s.replica_lag_records = static_cast<uint64_t>(
        metrics->GetGauge("exodus_replica_lag_records")->value());
  }
  return s;
}

}  // namespace exodus::server

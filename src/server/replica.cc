#include "server/replica.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "excess/database.h"
#include "excess/session.h"
#include "wal/wal_format.h"

namespace exodus::server {

using util::Result;
using util::Status;

Result<std::unique_ptr<Replicator>> Replicator::Bootstrap(
    ReplicatorOptions options) {
  EXODUS_ASSIGN_OR_RETURN(
      std::unique_ptr<Client> client,
      Client::Connect(options.primary_host, options.primary_port,
                      options.user));
  EXODUS_ASSIGN_OR_RETURN(Client::WalTailReply first, client->WalTail(0));

  std::unique_ptr<Database> db;
  uint64_t applied = 0;
  if (first.is_snapshot) {
    // The primary's WAL no longer reaches back to LSN 0: materialize
    // from the shipped checkpoint image, then tail from its cut.
    std::FILE* f = std::fopen(options.spool_path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IoError("cannot spool bootstrap snapshot to '" +
                             options.spool_path + "'");
    }
    const std::string& image = first.snapshot.image;
    size_t written = std::fwrite(image.data(), 1, image.size(), f);
    bool write_error = written != image.size() || std::fclose(f) != 0;
    if (write_error) {
      std::remove(options.spool_path.c_str());
      return Status::IoError("cannot spool bootstrap snapshot to '" +
                             options.spool_path + "'");
    }
    auto loaded = Database::Load(options.spool_path);
    std::remove(options.spool_path.c_str());
    if (!loaded.ok()) return loaded.status();
    db = std::move(*loaded);
    applied = first.snapshot.snapshot_lsn;
  } else {
    // The whole history is still in the WAL: replay from empty.
    db = std::make_unique<Database>();
  }
  db->SetReadOnly(true);

  std::unique_ptr<Replicator> rep(
      new Replicator(std::move(options), std::move(db), std::move(client)));
  auto session = rep->db_->CreateSession();
  if (!session.ok()) return session.status();
  rep->apply_session_ = std::move(*session);
  rep->apply_session_->set_replication_apply(true);
  rep->last_applied_.store(applied, std::memory_order_release);
  rep->db_->AdvanceRecoveredLsn(applied);
  if (first.is_snapshot) {
    rep->primary_durable_.store(applied, std::memory_order_release);
  } else {
    EXODUS_RETURN_IF_ERROR(rep->ApplyRecords(first.records));
  }
  rep->PublishPosition();
  return rep;
}

Replicator::Replicator(ReplicatorOptions options, std::unique_ptr<Database> db,
                       std::unique_ptr<Client> client)
    : options_(std::move(options)),
      db_(std::move(db)),
      client_(std::move(client)) {
  obs::MetricsRegistry* metrics = db_->metrics();
  applied_gauge_ = metrics->GetGauge("exodus_replica_last_applied_lsn");
  lag_gauge_ = metrics->GetGauge("exodus_replica_lag_records");
  primary_durable_gauge_ =
      metrics->GetGauge("exodus_replica_primary_durable_lsn");
  rounds_total_ = metrics->GetCounter("exodus_replica_rounds_total");
  records_applied_total_ =
      metrics->GetCounter("exodus_replica_records_applied_total");
  apply_errors_total_ =
      metrics->GetCounter("exodus_replica_apply_errors_total");
  reconnects_total_ = metrics->GetCounter("exodus_replica_reconnects_total");
}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tailer_.joinable()) return;
  stop_ = false;
  tailer_ = std::thread(&Replicator::Loop, this);
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (tailer_.joinable()) tailer_.join();
}

void Replicator::Loop() {
  std::string last_error;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    Status st = PollOnce();
    if (st.ok()) {
      last_error.clear();
    } else if (st.ToString() != last_error) {
      // Log each distinct failure once, not once per poll: a primary
      // that is down for a minute would otherwise flood stderr.
      last_error = st.ToString();
      std::fprintf(stderr, "replica: %s\n", last_error.c_str());
    }
  }
}

Status Replicator::PollOnce() {
  if (client_ == nullptr || !client_->connected()) {
    auto client = Client::Connect(options_.primary_host, options_.primary_port,
                                  options_.user);
    if (!client.ok()) return client.status();
    client_ = std::move(*client);
    reconnects_total_->Increment();
  }
  // Drain everything durable on the primary right now: a size-capped
  // batch is followed up immediately, the poll interval only paces the
  // caught-up case.
  for (;;) {
    auto reply = client_->WalTail(last_applied_lsn());
    if (!reply.ok()) return reply.status();
    rounds_total_->Increment();
    if (reply->is_snapshot) {
      // Our position predates the primary's retained WAL — possible
      // only after a disconnect spanning a checkpoint. Applying a
      // snapshot over live state is not supported; flag it loudly and
      // leave the (consistent, stale) replica serving.
      apply_errors_total_->Increment();
      PublishPosition();
      return Status::Internal(
          "replica fell behind the primary's retained WAL; restart the "
          "replica to re-bootstrap from a snapshot");
    }
    Status st = ApplyRecords(reply->records);
    PublishPosition();
    EXODUS_RETURN_IF_ERROR(st);
    if (reply->records.records.empty() ||
        last_applied_lsn() >= reply->records.primary_durable_lsn) {
      return Status::OK();
    }
  }
}

Status Replicator::ApplyRecords(const WalRecordsPayload& batch) {
  if (batch.primary_durable_lsn >
      primary_durable_.load(std::memory_order_relaxed)) {
    primary_durable_.store(batch.primary_durable_lsn,
                           std::memory_order_release);
  }
  for (const wal::WalRecord& rec : batch.records) {
    if (rec.lsn <= last_applied_lsn()) continue;
    if (rec.type == wal::RecordType::kStatement) {
      auto r = apply_session_->Execute(rec.payload);
      if (!r.ok()) {
        // Stop at the failed record rather than apply past it: a gap
        // would silently diverge the replica; a stall is visible (lag
        // grows, exodus_replica_apply_errors_total counts).
        apply_errors_total_->Increment();
        return Status::Internal(
            "replica apply failed at lsn " + std::to_string(rec.lsn) +
            " on '" + rec.payload + "': " + r.status().ToString());
      }
      records_applied_total_->Increment();
    }
    last_applied_.store(rec.lsn, std::memory_order_release);
    db_->AdvanceRecoveredLsn(rec.lsn);
  }
  return Status::OK();
}

void Replicator::PublishPosition() {
  applied_gauge_->Set(static_cast<int64_t>(last_applied_lsn()));
  primary_durable_gauge_->Set(static_cast<int64_t>(primary_durable_lsn()));
  lag_gauge_->Set(static_cast<int64_t>(lag_records()));
}

}  // namespace exodus::server

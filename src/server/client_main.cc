// excess_client — interactive remote client for excess_server.
//
//   excess_client [host:port] [--user NAME]
//
// Reads EXCESS statements (terminated by ';' or a blank line) and runs
// them on the server. Commands: \stats prints server counters,
// \metrics dumps the Prometheus text exposition, \activity shows the
// live per-session activity view, \waits shows cumulative wait-event
// counters, \quit exits. EOF
// (ctrl-D) exits cleanly with status 0; a lost server connection
// prints a message and exits 1.

#include <unistd.h>

#include <cctype>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "server/client.h"

namespace {

bool StatementComplete(const std::string& buf) {
  for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
    if (*it == ';') return true;
    if (!std::isspace(static_cast<unsigned char>(*it))) return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = "127.0.0.1:4077";
  std::string user = "dba";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--user" && i + 1 < argc) {
      user = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      spec = arg;
    } else {
      std::cerr << "usage: " << argv[0] << " [host:port] [--user NAME]\n";
      return 2;
    }
  }

  std::string host;
  uint16_t port = 0;
  auto st = exodus::server::ParseHostPort(spec, &host, &port);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 2;
  }
  auto connected = exodus::server::Client::Connect(host, port, user);
  if (!connected.ok()) {
    std::cerr << connected.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<exodus::server::Client> client = std::move(*connected);
  std::cout << "connected to " << host << ":" << port << " as " << user
            << " (\\stats for counters, \\activity for live sessions, "
               "\\quit or ctrl-D to exit)\n";

  std::string buffer;
  std::string line;
  bool tty = static_cast<bool>(isatty(0));
  while (true) {
    if (tty) std::cout << (buffer.empty() ? "excess> " : "   ...> ");
    if (!std::getline(std::cin, line)) {
      if (tty) std::cout << "\n";
      break;  // EOF: clean exit
    }
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\stats") {
        auto stats = client->Stats();
        if (!stats.ok()) {
          std::cerr << stats.status().ToString() << "\n";
          if (!client->connected()) return 1;
          continue;
        }
        std::cout << stats->ToString();
        continue;
      }
      if (line == "\\metrics") {
        auto text = client->Metrics();
        if (!text.ok()) {
          std::cerr << text.status().ToString() << "\n";
          if (!client->connected()) return 1;
          continue;
        }
        std::cout << *text;
        continue;
      }
      if (line == "\\activity") {
        auto activity = client->Activity();
        if (!activity.ok()) {
          std::cerr << activity.status().ToString() << "\n";
          if (!client->connected()) return 1;
          continue;
        }
        std::cout << activity->ToString();
        continue;
      }
      if (line == "\\waits") {
        // The cumulative wait profile is part of the metrics exposition;
        // show just the exodus_wait_* series (plus their HELP/TYPE).
        auto text = client->Metrics();
        if (!text.ok()) {
          std::cerr << text.status().ToString() << "\n";
          if (!client->connected()) return 1;
          continue;
        }
        std::istringstream in(*text);
        std::string mline;
        while (std::getline(in, mline)) {
          if (mline.find("exodus_wait_") != std::string::npos) {
            std::cout << mline << "\n";
          }
        }
        continue;
      }
      std::cerr << "unknown command '" << line
                << "' (try \\stats, \\metrics, \\activity, \\waits or "
                   "\\quit)\n";
      continue;
    }
    // Statement accumulation: run on ';' or on a blank line ending a
    // non-empty buffer.
    if (line.empty()) {
      if (buffer.empty()) continue;
    } else {
      if (!buffer.empty()) buffer += '\n';
      buffer += line;
      if (!StatementComplete(buffer)) continue;
    }
    std::string text = std::move(buffer);
    buffer.clear();

    auto rows = client->Query(text);
    if (!rows.ok()) {
      std::cerr << rows.status().ToString() << "\n";
      if (!client->connected()) {
        std::cerr << "connection to server lost\n";
        return 1;
      }
      continue;
    }
    std::cout << rows->ToString();
  }
  client->Close();
  return 0;
}

#ifndef EXODUS_SERVER_SERVER_H_
#define EXODUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/protocol.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace exodus {
class Database;
}

namespace exodus::server {

struct ServerOptions {
  /// Interface to bind (IPv4 dotted quad). Loopback by default — this
  /// is a research engine, not a hardened network daemon.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads executing statements. Connections beyond this many
  /// stay connected; their requests queue on the pool.
  size_t workers = 4;
};

/// Fixed power-of-two-bucket latency histogram (microseconds). The
/// server records into the database's metrics registry, so \stats and
/// the Prometheus exposition read the same buckets.
using LatencyHistogram = obs::Histogram;

/// Aggregate server counters — pointers into the owning Database's
/// MetricsRegistry (`exodus_server_*` series), so the same numbers feed
/// \stats and the \metrics exposition. All lock-free atomics underneath:
/// any connection's \stats reads while others execute.
struct ServerCounters {
  obs::Counter* connections_total = nullptr;
  obs::Gauge* connections_active = nullptr;
  obs::Counter* queries_total = nullptr;
  obs::Counter* errors_total = nullptr;
  obs::Histogram* latency = nullptr;
};

/// The networked front end of one Database: accepts TCP connections,
/// gives each its own Session (so `range of` declarations and the
/// authenticated user stay per-connection), and executes requests on a
/// fixed-size worker pool. Read/write isolation comes from the
/// database-level reader/writer lock acquired inside the Session layer.
///
///   exodus::Database db;
///   exodus::server::Server server(&db, {.port = 4077, .workers = 8});
///   auto st = server.Start();       // returns once listening
///   ...
///   server.Stop();                  // drain in-flight queries, join
///
/// Malformed frames and mid-query disconnects fail only their own
/// connection; the server (and the statements of other connections)
/// keep running.
class Server {
 public:
  Server(Database* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor thread.
  util::Status Start();

  /// Graceful shutdown: stop accepting, let every in-flight request
  /// finish and its response flush, then join all threads. The journal
  /// needs no extra flushing — every append is durable when it returns.
  /// Idempotent.
  void Stop();

  /// The bound TCP port (after Start; resolves port 0 to the actual
  /// ephemeral port).
  uint16_t port() const { return port_; }

  const ServerCounters& counters() const { return counters_; }

  Database* database() { return db_; }

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* conn);

  /// Handles one decoded request frame; returns false when the
  /// connection should close (BYE, fatal protocol error).
  bool HandleFrame(Connection* conn, const Frame& frame);

  /// Runs `job` on the worker pool and blocks until it completes (the
  /// per-connection thread only parses and does socket I/O; statement
  /// execution happens on the pool, which is what bounds concurrency).
  /// Falls back to inline execution if the pool is shutting down.
  void RunOnPool(std::function<void()> job);

  /// WriteFrame wrapped in a `server_send` wait guard: response
  /// flushing that blocks on the socket shows up in the wait profile.
  util::Status SendFrame(Connection* conn, MsgType type,
                         const std::string& body);

  StatsPayload BuildStats(const Connection& conn) const;

  /// Joins finished connection threads (called from the accept loop).
  void ReapConnections();

  Database* db_;
  ServerOptions options_;
  util::ThreadPool pool_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  ServerCounters counters_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace exodus::server

#endif  // EXODUS_SERVER_SERVER_H_

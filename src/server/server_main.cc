// excess_server — the networked EXCESS query server.
//
//   excess_server [--port N] [--host A.B.C.D] [--workers N]
//                 [--load file] [--journal file] [--init file]
//
// Serves the wire protocol of docs/server_protocol.md on a fixed-size
// worker pool; one server-side Session per connection. SIGINT / SIGTERM
// shut down gracefully: stop accepting, drain in-flight queries, flush
// and exit 0.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "excess/database.h"
#include "server/server.h"

namespace {

// Self-pipe woken by the signal handler; main blocks on it.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--host A.B.C.D] [--workers N]"
               " [--load file] [--journal file] [--init file]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  exodus::server::ServerOptions options;
  options.port = 4077;
  std::string load_path;
  std::string journal_path;
  std::string init_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--host" && (v = next())) {
      options.host = v;
    } else if (arg == "--workers" && (v = next())) {
      options.workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--load" && (v = next())) {
      load_path = v;
    } else if (arg == "--journal" && (v = next())) {
      journal_path = v;
    } else if (arg == "--init" && (v = next())) {
      init_path = v;
    } else {
      return Usage(argv[0]);
    }
  }

  std::unique_ptr<exodus::Database> db;
  if (!load_path.empty()) {
    auto loaded = exodus::Database::Load(load_path);
    if (!loaded.ok()) {
      std::cerr << "cannot load '" << load_path
                << "': " << loaded.status().ToString() << "\n";
      return 1;
    }
    db = std::move(*loaded);
  } else {
    db = std::make_unique<exodus::Database>();
  }
  if (!journal_path.empty()) {
    auto st = db->EnableJournal(journal_path);
    if (!st.ok()) {
      std::cerr << "cannot journal to '" << journal_path
                << "': " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!init_path.empty()) {
    std::ifstream in(init_path);
    if (!in) {
      std::cerr << "cannot read init script '" << init_path << "'\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto r = db->ExecuteAll(buf.str());
    if (!r.ok()) {
      std::cerr << "init script failed: " << r.status().ToString() << "\n";
      return 1;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  exodus::server::Server server(db.get(), options);
  auto st = server.Start();
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "excess_server listening on " << options.host << ":"
            << server.port() << " with " << options.workers
            << " worker(s)\n";

  // Block until SIGINT/SIGTERM.
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::cout << "\nshutting down (draining in-flight queries)...\n";
  server.Stop();
  const auto& c = server.counters();
  std::cout << "served " << c.queries_total->value() << " quer(ies) on "
            << c.connections_total->value() << " connection(s), "
            << c.errors_total->value() << " error(s)\n";
  return 0;
}

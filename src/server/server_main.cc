// excess_server — the networked EXCESS query server.
//
//   excess_server [--port N] [--host A.B.C.D] [--workers N]
//                 [--load file] [--journal file] [--init file]
//                 [--durability sync|group|async]
//                 [--checkpoint file [--checkpoint-interval-ms N]]
//                 [--replica-of host:port]
//
// Serves the wire protocol of docs/server_protocol.md on a fixed-size
// worker pool; one server-side Session per connection. SIGINT / SIGTERM
// shut down gracefully: stop accepting, drain in-flight queries, flush
// and exit 0.
//
// With --replica-of the server is a journal-shipping read replica: it
// bootstraps its database from the primary (WAL replay or a snapshot
// image), keeps tailing the primary's WAL in the background, and serves
// read-only queries; writes are rejected. --journal/--load/--init are
// primary-side options and are rejected in replica mode.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "excess/database.h"
#include "server/replica.h"
#include "server/server.h"
#include "wal/durability.h"

namespace {

// Self-pipe woken by the signal handler; main blocks on it.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--host A.B.C.D] [--workers N]"
               " [--load file] [--journal file] [--init file]"
               " [--durability sync|group|async]"
               " [--checkpoint file [--checkpoint-interval-ms N]]"
               " [--replica-of host:port]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  exodus::server::ServerOptions options;
  options.port = 4077;
  std::string load_path;
  std::string journal_path;
  std::string init_path;
  std::string checkpoint_path;
  std::string replica_of;
  int checkpoint_interval_ms = 30000;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--host" && (v = next())) {
      options.host = v;
    } else if (arg == "--workers" && (v = next())) {
      options.workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--load" && (v = next())) {
      load_path = v;
    } else if (arg == "--journal" && (v = next())) {
      journal_path = v;
    } else if (arg == "--init" && (v = next())) {
      init_path = v;
    } else if (arg == "--durability" && (v = next())) {
      exodus::wal::Durability durability;
      if (!exodus::wal::ParseDurability(v, &durability)) {
        std::cerr << "unknown durability mode '" << v
                  << "' (sync|group|async)\n";
        return 2;
      }
      // Sessions seed their options from the environment at creation,
      // so the flag reaches every connection's session.
      ::setenv("EXODUS_DURABILITY", v, 1);
    } else if (arg == "--checkpoint" && (v = next())) {
      checkpoint_path = v;
    } else if (arg == "--checkpoint-interval-ms" && (v = next())) {
      checkpoint_interval_ms = std::atoi(v);
    } else if (arg == "--replica-of" && (v = next())) {
      replica_of = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!replica_of.empty() &&
      (!load_path.empty() || !journal_path.empty() || !init_path.empty() ||
       !checkpoint_path.empty())) {
    std::cerr << "--replica-of cannot be combined with --load, --journal, "
                 "--init or --checkpoint\n";
    return 2;
  }

  std::unique_ptr<exodus::Database> db;
  std::unique_ptr<exodus::server::Replicator> replicator;
  exodus::Database* serving_db = nullptr;
  if (!replica_of.empty()) {
    exodus::server::ReplicatorOptions ropts;
    auto st = exodus::server::ParseHostPort(replica_of, &ropts.primary_host,
                                            &ropts.primary_port);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 2;
    }
    ropts.spool_path = "excess_replica_bootstrap." +
                       std::to_string(::getpid()) + ".ckpt";
    auto rep = exodus::server::Replicator::Bootstrap(ropts);
    if (!rep.ok()) {
      std::cerr << "cannot bootstrap replica of " << replica_of << ": "
                << rep.status().ToString() << "\n";
      return 1;
    }
    replicator = std::move(*rep);
    serving_db = replicator->database();
  } else {
    if (!journal_path.empty()) {
      // Recover (not plain EnableJournal): a restart after a crash
      // loads the checkpoint, if any, and replays whatever the
      // previous incarnation made durable past it. A --checkpoint from
      // a previous incarnation is a recovery base too — the WAL below
      // its cut has been truncated.
      std::string recover_image = load_path;
      if (recover_image.empty() && !checkpoint_path.empty()) {
        std::ifstream probe(checkpoint_path);
        if (probe) recover_image = checkpoint_path;
      }
      auto recovered = exodus::Database::Recover(recover_image, journal_path);
      if (!recovered.ok()) {
        std::cerr << "cannot recover journal '" << journal_path
                  << "': " << recovered.status().ToString() << "\n";
        return 1;
      }
      db = std::move(*recovered);
    } else if (!load_path.empty()) {
      auto loaded = exodus::Database::Load(load_path);
      if (!loaded.ok()) {
        std::cerr << "cannot load '" << load_path
                  << "': " << loaded.status().ToString() << "\n";
        return 1;
      }
      db = std::move(*loaded);
    } else {
      db = std::make_unique<exodus::Database>();
    }
    if (!init_path.empty()) {
      std::ifstream in(init_path);
      if (!in) {
        std::cerr << "cannot read init script '" << init_path << "'\n";
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto r = db->ExecuteAll(buf.str());
      if (!r.ok()) {
        std::cerr << "init script failed: " << r.status().ToString() << "\n";
        return 1;
      }
    }
    if (!checkpoint_path.empty()) {
      if (journal_path.empty()) {
        std::cerr << "--checkpoint requires --journal\n";
        return 2;
      }
      db->StartAutoCheckpoint(checkpoint_path, checkpoint_interval_ms);
    }
    serving_db = db.get();
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  exodus::server::Server server(serving_db, options);
  auto st = server.Start();
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (replicator != nullptr) {
    replicator->Start();
    std::cout << "replicating from " << replica_of << " (read-only)\n";
  }
  std::cout << "excess_server listening on " << options.host << ":"
            << server.port() << " with " << options.workers
            << " worker(s)" << std::endl;

  // Block until SIGINT/SIGTERM.
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::cout << "\nshutting down (draining in-flight queries)...\n";
  if (replicator != nullptr) replicator->Stop();
  server.Stop();
  const auto& c = server.counters();
  std::cout << "served " << c.queries_total->value() << " quer(ies) on "
            << c.connections_total->value() << " connection(s), "
            << c.errors_total->value() << " error(s)\n";
  return 0;
}

#ifndef EXODUS_SERVER_PROTOCOL_H_
#define EXODUS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "object/value.h"
#include "util/result.h"
#include "util/status.h"
#include "wal/wal_format.h"

/// The EXCESS wire protocol (see docs/server_protocol.md).
///
/// Every message is one length-prefixed frame:
///
///   uint32 payload_length (big-endian)  |  payload
///
/// where payload[0] is the message type and the rest is the typed body.
/// All integers are big-endian; strings are a uint32 byte length
/// followed by raw bytes; floats travel as IEEE-754 bit patterns.
///
/// The protocol is deliberately small: requests carry either statement
/// text or a prepared-statement handle plus scalar parameter values;
/// responses carry a status, a result table (column names + rows of
/// formatted cells), or an error with code and source position.
namespace exodus::server {

/// Protocol revision; sent by the client in HELLO and checked by the
/// server (a mismatch is a clean ERROR, not a hang). Version 2 added
/// WAL_TAIL and the durability/replica fields of StatsPayload; version
/// 3 added ACTIVITY (live session introspection).
constexpr uint8_t kProtocolVersion = 3;

/// Upper bound on a frame payload. Anything larger is treated as a
/// malformed frame and fails the connection without allocating.
constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Upper bound on a WAL_SNAPSHOT reply: a checkpoint image travels as
/// one frame, which can legitimately exceed kMaxFramePayload. Only the
/// replication client reads frames under this larger cap.
constexpr uint32_t kMaxSnapshotPayload = 256u << 20;  // 256 MiB

enum class MsgType : uint8_t {
  // Requests (client -> server).
  kHello = 0x01,     // u8 version, string user
  kQuery = 0x02,     // string statement-or-program text
  kPrepare = 0x03,   // string statement text (may contain $n)
  kExecute = 0x04,   // u32 handle, u32 nparams, nparams * value
  kCloseStmt = 0x05, // u32 handle
  kStats = 0x06,     // (empty)
  kBye = 0x07,       // (empty)
  kMetrics = 0x08,   // (empty)
  kWalTail = 0x09,   // u64 after_lsn — see WalRecordsPayload
  kActivity = 0x0A,  // (empty) — see ActivityPayload

  // Responses (server -> client).
  kOk = 0x81,          // string message
  kRows = 0x82,        // result table, see RowsPayload
  kError = 0x83,       // u8 code, string message, u32 line, u32 column
  kPrepared = 0x84,    // u32 handle, u32 param_count
  kStatsReply = 0x85,  // see StatsPayload
  kMetricsReply = 0x86,  // string: Prometheus text exposition
  kWalSnapshotReply = 0x87,  // see WalSnapshotPayload (bootstrap)
  kWalRecordsReply = 0x88,   // see WalRecordsPayload (incremental)
  kActivityReply = 0x89,     // see ActivityPayload
};

/// True if `t` is one of the defined request types.
bool IsRequestType(uint8_t t);

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

void PutU8(uint8_t v, std::string* out);
void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
void PutI64(int64_t v, std::string* out);
void PutF64(double v, std::string* out);
void PutString(const std::string& s, std::string* out);

/// Sequential decoder over one frame body. Every getter fails with
/// InvalidArgument on truncated input instead of reading out of bounds,
/// so malformed frames surface as clean errors.
class WireReader {
 public:
  explicit WireReader(const std::string& buf, size_t pos = 0)
      : buf_(buf), pos_(pos) {}

  util::Result<uint8_t> U8();
  util::Result<uint32_t> U32();
  util::Result<uint64_t> U64();
  util::Result<int64_t> I64();
  util::Result<double> F64();
  util::Result<std::string> Str();

  bool AtEnd() const { return pos_ >= buf_.size(); }
  size_t pos() const { return pos_; }

 private:
  const std::string& buf_;
  size_t pos_;
};

// ---------------------------------------------------------------------------
// Scalar parameter values
// ---------------------------------------------------------------------------

/// Encodes a scalar Value (null / int / float / bool / string) for a
/// prepared-statement EXECUTE request. Composite values are rejected —
/// the wire protocol binds scalars only.
util::Status PutValue(const object::Value& v, std::string* out);

/// Decodes one scalar value written by PutValue.
util::Result<object::Value> GetValue(WireReader* r);

// ---------------------------------------------------------------------------
// Structured payloads
// ---------------------------------------------------------------------------

/// The RESULT table of a query: column names plus rows of cells already
/// formatted server-side (references resolved through the heap), the
/// statement message and the affected-row count.
struct RowsPayload {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::string message;
  uint64_t affected = 0;

  void EncodeTo(std::string* out) const;
  static util::Result<RowsPayload> Decode(WireReader* r);

  /// Plain-text rendering (mirrors QueryResult::ToString).
  std::string ToString() const;
};

/// An ERROR response: the util::StatusCode, the message, and the source
/// position when the message carries one (0 = unknown).
struct ErrorPayload {
  uint8_t code = 0;
  std::string message;
  uint32_t line = 0;
  uint32_t column = 0;

  void EncodeTo(std::string* out) const;
  static util::Result<ErrorPayload> Decode(WireReader* r);

  /// Rebuilds a util::Status carrying the original code and message.
  util::Status ToStatus() const;
  /// Builds the payload from a non-OK status, extracting "line L,
  /// column C" position info when present in the message.
  static ErrorPayload FromStatus(const util::Status& s);
};

/// The STATS response: aggregate server counters, latency percentiles
/// from the server's fixed histogram, the database plan-cache counters,
/// durability/replication state, and the requesting connection's own
/// counters.
struct StatsPayload {
  uint64_t connections_total = 0;
  uint64_t connections_active = 0;
  uint64_t queries_total = 0;
  uint64_t errors_total = 0;
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_evictions = 0;
  uint64_t connection_queries = 0;
  uint64_t connection_errors = 0;
  /// WAL position on a journaling primary (all zero when journaling is
  /// off): last staged LSN, last fsynced LSN, fsync count.
  uint64_t wal_last_lsn = 0;
  uint64_t wal_durable_lsn = 0;
  uint64_t wal_fsyncs_total = 0;
  /// 1 when the server is a read-only replica; then the apply position
  /// and its lag behind the primary's durable LSN, in records.
  uint64_t replica_mode = 0;
  uint64_t replica_applied_lsn = 0;
  uint64_t replica_lag_records = 0;

  void EncodeTo(std::string* out) const;
  static util::Result<StatsPayload> Decode(WireReader* r);

  std::string ToString() const;
};

/// A WAL_SNAPSHOT response: bootstrap for a replica whose position
/// predates the primary's retained WAL. The image is a complete
/// checkpoint (Database::Save format) subsuming every record with LSN
/// at or below `snapshot_lsn`; the replica loads it, then tails from
/// `snapshot_lsn`.
struct WalSnapshotPayload {
  uint64_t snapshot_lsn = 0;
  std::string image;

  void EncodeTo(std::string* out) const;
  static util::Result<WalSnapshotPayload> Decode(WireReader* r);
};

/// A WAL_RECORDS response: the batch of durable journal records after
/// the requested LSN (possibly empty — the replica is caught up), plus
/// the primary's current durable LSN so the replica can compute lag.
struct WalRecordsPayload {
  uint64_t primary_durable_lsn = 0;
  std::vector<wal::WalRecord> records;

  void EncodeTo(std::string* out) const;
  static util::Result<WalRecordsPayload> Decode(WireReader* r);
};

/// The ACTIVITY response (protocol v3): one entry per live session —
/// pg_stat_activity for EXODUS. Phase and wait travel as their label
/// strings, so old clients render entries from newer servers without
/// knowing the enum.
struct ActivityPayload {
  struct Entry {
    uint64_t session_id = 0;
    std::string user;
    uint8_t active = 0;
    uint64_t query_id = 0;
    std::string statement;  ///< truncated server-side
    uint64_t elapsed_us = 0;
    std::string phase;  ///< "idle" | "parse" | "bind" | "optimize" | "execute"
    std::string wait;   ///< current wait-event name, "" when running
    uint64_t rows = 0;
    uint64_t batches = 0;
    uint64_t morsels_done = 0;
    uint64_t morsels_total = 0;
  };
  std::vector<Entry> entries;

  void EncodeTo(std::string* out) const;
  static util::Result<ActivityPayload> Decode(WireReader* r);

  /// Plain-text rendering (one block per session, `\activity`).
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Frame I/O over a connected socket
// ---------------------------------------------------------------------------

struct Frame {
  MsgType type;
  std::string body;
};

/// Writes one frame (length prefix + type byte + body). Fails with
/// IoError if the peer is gone.
util::Status WriteFrame(int fd, MsgType type, const std::string& body);

/// Reads one frame. A clean EOF before any byte yields NotFound (the
/// peer hung up between requests); anything else short or oversized is
/// IoError / InvalidArgument.
util::Result<Frame> ReadFrame(int fd,
                              uint32_t max_payload = kMaxFramePayload);

}  // namespace exodus::server

#endif  // EXODUS_SERVER_PROTOCOL_H_

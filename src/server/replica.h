#ifndef EXODUS_SERVER_REPLICA_H_
#define EXODUS_SERVER_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "server/client.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus {
class Database;
class Session;
}

namespace exodus::server {

struct ReplicatorOptions {
  /// The primary excess_server to tail (its regular query port).
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// How often to poll WAL_TAIL when caught up. A round that returns a
  /// full batch polls again immediately.
  int poll_interval_ms = 100;
  /// Where to spool a bootstrap checkpoint image before loading it
  /// (unlinked afterwards).
  std::string spool_path = "exodus_replica_bootstrap.ckpt";
  /// User for the replication connection's HELLO.
  std::string user = "dba";
};

/// Journal-shipping read replica (docs/durability.md): owns a read-only
/// Database materialized from the primary's WAL and keeps it fresh by
/// polling WAL_TAIL on a background thread.
///
///   auto rep = Replicator::Bootstrap({.primary_port = 4077});
///   (*rep)->Start();
///   exodus::server::Server server((*rep)->database(), {...});  // serves reads
///
/// Bootstrap connects, fetches either the WAL from LSN 0 or — when the
/// primary's checkpoints have already truncated it — a consistent
/// snapshot image, and builds the local database. Start() then applies
/// each durable record in LSN order through a replication-apply session
/// (the only writer the read-only database accepts). The primary keeps
/// a per-connection retainer at the replica's acknowledged position, so
/// records never vanish under a connected replica; a replica that
/// reconnects after falling behind a checkpoint is re-bootstrapped by
/// the operator (restart), not silently diverged.
///
/// Position and lag are published on the replica database's metrics
/// registry (exodus_replica_* series), which both \metrics and the
/// serving server's \stats read.
class Replicator {
 public:
  /// Connects to the primary and builds the initial replica database.
  static util::Result<std::unique_ptr<Replicator>> Bootstrap(
      ReplicatorOptions options);

  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the background tailer thread. Idempotent.
  void Start();
  /// Stops and joins the tailer. Idempotent; the destructor calls it.
  void Stop();

  /// The read-only replica database (owned by this Replicator; valid
  /// until destruction).
  Database* database() { return db_.get(); }

  /// Highest LSN applied locally.
  uint64_t last_applied_lsn() const {
    return last_applied_.load(std::memory_order_acquire);
  }
  /// The primary's durable LSN as of the last round.
  uint64_t primary_durable_lsn() const {
    return primary_durable_.load(std::memory_order_acquire);
  }
  /// Records known durable on the primary but not yet applied here.
  uint64_t lag_records() const {
    uint64_t durable = primary_durable_lsn();
    uint64_t applied = last_applied_lsn();
    return durable > applied ? durable - applied : 0;
  }

  /// One synchronous tail round (also used by the background loop):
  /// fetches and applies everything durable on the primary right now.
  /// Tests call this directly for deterministic catch-up.
  util::Status PollOnce();

 private:
  Replicator(ReplicatorOptions options, std::unique_ptr<Database> db,
             std::unique_ptr<Client> client);

  void Loop();
  util::Status ApplyRecords(const WalRecordsPayload& batch);
  void PublishPosition();

  ReplicatorOptions options_;
  /// Declared before the session and thread: destroyed last.
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> apply_session_;
  std::unique_ptr<Client> client_;

  std::atomic<uint64_t> last_applied_{0};
  std::atomic<uint64_t> primary_durable_{0};

  obs::Gauge* applied_gauge_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
  obs::Gauge* primary_durable_gauge_ = nullptr;
  obs::Counter* rounds_total_ = nullptr;
  obs::Counter* records_applied_total_ = nullptr;
  obs::Counter* apply_errors_total_ = nullptr;
  obs::Counter* reconnects_total_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread tailer_;
};

}  // namespace exodus::server

#endif  // EXODUS_SERVER_REPLICA_H_

#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace exodus::server {

using util::Result;
using util::Status;

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                const std::string& user) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse server address '" + host +
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }

  std::unique_ptr<Client> client(new Client(fd));
  std::string hello;
  PutU8(kProtocolVersion, &hello);
  PutString(user, &hello);
  EXODUS_ASSIGN_OR_RETURN(Frame reply,
                          client->RoundTrip(MsgType::kHello, hello));
  if (reply.type != MsgType::kOk) {
    return Status::IoError("unexpected HELLO response");
  }
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  (void)WriteFrame(fd_, MsgType::kBye, std::string());
  ::close(fd_);
  fd_ = -1;
}

Result<Frame> Client::RoundTrip(MsgType type, const std::string& body,
                                uint32_t max_payload) {
  if (fd_ < 0) return Status::IoError("not connected");
  Status st = WriteFrame(fd_, type, body);
  if (!st.ok()) {
    ::close(fd_);
    fd_ = -1;
    return Status::IoError("server connection lost: " + st.message());
  }
  Result<Frame> reply = ReadFrame(fd_, max_payload);
  if (!reply.ok()) {
    ::close(fd_);
    fd_ = -1;
    return Status::IoError("server disconnected: " +
                           reply.status().message());
  }
  if (reply->type == MsgType::kError) {
    WireReader r(reply->body);
    EXODUS_ASSIGN_OR_RETURN(ErrorPayload err, ErrorPayload::Decode(&r));
    return err.ToStatus();
  }
  return reply;
}

Result<RowsPayload> Client::Query(const std::string& text) {
  std::string body;
  PutString(text, &body);
  EXODUS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kQuery, body));
  if (reply.type != MsgType::kRows) {
    return Status::IoError("unexpected QUERY response");
  }
  WireReader r(reply.body);
  return RowsPayload::Decode(&r);
}

Result<RemoteStatement> Client::Prepare(const std::string& text) {
  std::string body;
  PutString(text, &body);
  EXODUS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kPrepare, body));
  if (reply.type != MsgType::kPrepared) {
    return Status::IoError("unexpected PREPARE response");
  }
  WireReader r(reply.body);
  RemoteStatement stmt;
  EXODUS_ASSIGN_OR_RETURN(stmt.handle, r.U32());
  EXODUS_ASSIGN_OR_RETURN(stmt.param_count, r.U32());
  return stmt;
}

Result<RowsPayload> Client::Execute(
    const RemoteStatement& stmt, const std::vector<object::Value>& params) {
  std::string body;
  PutU32(stmt.handle, &body);
  PutU32(static_cast<uint32_t>(params.size()), &body);
  for (const object::Value& v : params) {
    EXODUS_RETURN_IF_ERROR(PutValue(v, &body));
  }
  EXODUS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kExecute, body));
  if (reply.type != MsgType::kRows) {
    return Status::IoError("unexpected EXECUTE response");
  }
  WireReader r(reply.body);
  return RowsPayload::Decode(&r);
}

Status Client::CloseStatement(const RemoteStatement& stmt) {
  std::string body;
  PutU32(stmt.handle, &body);
  EXODUS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(MsgType::kCloseStmt, body));
  if (reply.type != MsgType::kOk) {
    return Status::IoError("unexpected CLOSE response");
  }
  return Status::OK();
}

Result<StatsPayload> Client::Stats() {
  EXODUS_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(MsgType::kStats, std::string()));
  if (reply.type != MsgType::kStatsReply) {
    return Status::IoError("unexpected STATS response");
  }
  WireReader r(reply.body);
  return StatsPayload::Decode(&r);
}

Result<std::string> Client::Metrics() {
  EXODUS_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(MsgType::kMetrics, std::string()));
  if (reply.type != MsgType::kMetricsReply) {
    return Status::IoError("unexpected METRICS response");
  }
  WireReader r(reply.body);
  return r.Str();
}

Result<ActivityPayload> Client::Activity() {
  EXODUS_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(MsgType::kActivity, std::string()));
  if (reply.type != MsgType::kActivityReply) {
    return Status::IoError("unexpected ACTIVITY response");
  }
  WireReader r(reply.body);
  return ActivityPayload::Decode(&r);
}

Result<Client::WalTailReply> Client::WalTail(uint64_t after_lsn) {
  std::string body;
  PutU64(after_lsn, &body);
  EXODUS_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(MsgType::kWalTail, body, kMaxSnapshotPayload));
  WireReader r(reply.body);
  WalTailReply result;
  if (reply.type == MsgType::kWalSnapshotReply) {
    result.is_snapshot = true;
    EXODUS_ASSIGN_OR_RETURN(result.snapshot, WalSnapshotPayload::Decode(&r));
    return result;
  }
  if (reply.type != MsgType::kWalRecordsReply) {
    return Status::IoError("unexpected WAL_TAIL response");
  }
  EXODUS_ASSIGN_OR_RETURN(result.records, WalRecordsPayload::Decode(&r));
  return result;
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  *host = "127.0.0.1";
  std::string port_part = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) *host = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  char* end = nullptr;
  unsigned long p = std::strtoul(port_part.c_str(), &end, 10);
  if (end == port_part.c_str() || *end != '\0' || p == 0 || p > 65535) {
    return Status::InvalidArgument("cannot parse port in '" + spec +
                                   "' (expected host:port)");
  }
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

}  // namespace exodus::server

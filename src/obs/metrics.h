#ifndef EXODUS_OBS_METRICS_H_
#define EXODUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace exodus::obs {

/// A monotonically increasing counter. Recording is a single relaxed
/// atomic add; reads are relaxed loads, so hot paths never contend.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (active connections, cache size).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed power-of-two-bucket histogram. Bucket 0 counts observations
/// < 1; bucket i (i >= 1) counts observations in [2^(i-1), 2^i). All
/// counters are atomics: many threads record while any thread reads a
/// percentile or snapshot concurrently.
///
/// This generalizes the server's original latency histogram; the server
/// records microseconds, the statement tracer records microseconds, and
/// tests exercise the bucket math directly.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t value);

  /// The upper bound of the bucket containing the p-th percentile
  /// observation (p in [0,1]); 0 when the histogram is empty. The top
  /// bucket saturates: observations >= 2^(kBuckets-2) all land there
  /// and report its upper bound.
  uint64_t Percentile(double p) const;

  /// Total number of recorded observations.
  uint64_t TotalCount() const;

  /// Approximate sum of observations (each counted at its bucket's
  /// upper bound) — the `_sum` series of the Prometheus exposition.
  uint64_t ApproxSum() const;

  /// Copies the per-bucket counts (for exposition rendering).
  void Snapshot(uint64_t counts[kBuckets]) const;

  /// The exclusive upper bound of bucket `i` (1, 2, 4, ... 2^(i-1)...).
  static uint64_t BucketUpperBound(size_t i);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// A process- or database-wide registry of named metrics.
///
/// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex
/// and returns a stable pointer; entries are never removed, so callers
/// cache the pointer once and record lock-free forever after.
/// RegisterCallback adds a metric whose value is computed at render
/// time from counters maintained elsewhere (plan cache, buffer pool).
///
/// Metric names follow Prometheus conventions and may carry a label
/// set: `exodus_operator_rows_total{op="hash_join"}`. RenderPrometheus
/// groups series of one family (the name up to `{`) under a single
/// `# TYPE` header.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a metric computed at render time. `kind` is "counter"
  /// or "gauge" (exposition TYPE line). The callback must be safe to
  /// invoke from any thread (typically it reads other atomics).
  void RegisterCallback(const std::string& name, const std::string& kind,
                        std::function<uint64_t()> fn);

  /// Prometheus text exposition (version 0.0.4) of every registered
  /// metric: `# TYPE` headers, one `name value` line per scalar series,
  /// cumulative `_bucket{le=...}` / `_sum` / `_count` per histogram.
  std::string RenderPrometheus() const;

  /// Number of registered series (tests).
  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::string type_name;  // "counter" | "gauge" | "histogram"
    Counter counter;
    Gauge gauge;
    Histogram histogram;
    std::function<uint64_t()> callback;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind,
                      const std::string& type_name);

  mutable std::mutex mu_;
  /// Keyed by full series name (labels included); std::map keeps the
  /// exposition sorted and therefore stable across scrapes. Values
  /// point into entries_ (deque growth never moves elements).
  std::map<std::string, Entry*> index_;
  std::deque<Entry> entries_;
};

}  // namespace exodus::obs

#endif  // EXODUS_OBS_METRICS_H_

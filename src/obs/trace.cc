#include "obs/trace.h"

namespace exodus::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string Micros(uint64_t ns) { return std::to_string(ns / 1000); }

}  // namespace

std::string SlowQueryRecord::ToString() const {
  std::string out = "#" + std::to_string(query_id) + " [" + user + "]";
  if (session_id != 0) out += " session " + std::to_string(session_id);
  out += " " + Micros(total_ns) + " us (parse " + Micros(parse_ns) +
         ", bind " + Micros(bind_ns) + ", optimize " + Micros(optimize_ns) +
         ", execute " + Micros(execute_ns) + "), " + std::to_string(rows) +
         " row(s)";
  uint64_t total_wait = 0;
  size_t dominant = 0;
  for (size_t i = 0; i < kWaitEventCount; ++i) {
    total_wait += wait_ns[i];
    if (wait_ns[i] > wait_ns[dominant]) dominant = i;
  }
  if (total_wait > 0) {
    out += ", waited " + Micros(total_wait) + " us (mostly " +
           WaitEventName(static_cast<WaitEvent>(dominant + 1)) + ")";
  }
  out += "\n  " + statement + "\n";
  if (!annotated_plan.empty()) {
    // Indent the plan under the record.
    size_t start = 0;
    while (start < annotated_plan.size()) {
      size_t end = annotated_plan.find('\n', start);
      if (end == std::string::npos) end = annotated_plan.size();
      out += "  | " + annotated_plan.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

QueryTracer::QueryTracer(MetricsRegistry* registry)
    : statements_total_(registry->GetCounter("exodus_statements_total")),
      statement_errors_total_(
          registry->GetCounter("exodus_statement_errors_total")),
      slow_statements_total_(
          registry->GetCounter("exodus_slow_statements_total")),
      statement_latency_us_(
          registry->GetHistogram("exodus_statement_latency_us")) {}

void QueryTracer::Begin(StmtTrace* trace) {
  trace->query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  int64_t t = slow_threshold_ns_.load(std::memory_order_relaxed);
  trace->plan_capture_threshold_ns =
      t < 0 ? UINT64_MAX : static_cast<uint64_t>(t);
}

void QueryTracer::SetSink(TraceSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
  has_sink_.store(static_cast<bool>(sink_), std::memory_order_relaxed);
}

void QueryTracer::SetSlowQueryThresholdMicros(int64_t micros) {
  slow_threshold_ns_.store(micros < 0 ? -1 : micros * 1000,
                           std::memory_order_relaxed);
}

int64_t QueryTracer::slow_query_threshold_micros() const {
  int64_t t = slow_threshold_ns_.load(std::memory_order_relaxed);
  return t < 0 ? -1 : t / 1000;
}

std::vector<SlowQueryRecord> QueryTracer::SlowQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(slow_.begin(), slow_.end());
}

void QueryTracer::ClearSlowQueries() {
  std::lock_guard<std::mutex> lock(mu_);
  slow_.clear();
}

void QueryTracer::Finish(const StmtTrace& trace, bool ok,
                         const std::string& user) {
  const uint64_t total_ns =
      trace.parse_ns + trace.bind_ns + trace.optimize_ns + trace.execute_ns;

  statements_total_->Increment();
  if (!ok) statement_errors_total_->Increment();
  statement_latency_us_->Record(total_ns / 1000);

  const int64_t threshold = slow_threshold_ns_.load(std::memory_order_relaxed);
  const bool slow =
      threshold >= 0 && total_ns >= static_cast<uint64_t>(threshold);
  const bool sink = has_sink_.load(std::memory_order_relaxed);
  if (!slow && !sink) return;

  if (slow) slow_statements_total_->Increment();

  std::string line;
  if (sink) {
    line = "{\"query_id\":" + std::to_string(trace.query_id) +
           ",\"session_id\":" + std::to_string(trace.session_id) +
           ",\"user\":\"" + JsonEscape(user) + "\",\"statement\":\"" +
           JsonEscape(trace.statement) + "\",\"parse_us\":" +
           Micros(trace.parse_ns) + ",\"bind_us\":" + Micros(trace.bind_ns) +
           ",\"optimize_us\":" + Micros(trace.optimize_ns) +
           ",\"execute_us\":" + Micros(trace.execute_ns) +
           ",\"total_us\":" + Micros(total_ns) +
           ",\"rows\":" + std::to_string(trace.rows) + ",\"cached_plan\":" +
           (trace.used_cached_plan ? "true" : "false") + ",\"slow\":" +
           (slow ? "true" : "false");
    // Wait breakdown: only classes the statement actually waited on, so
    // the common zero-wait line stays short.
    std::string waits;
    for (size_t i = 0; i < kWaitEventCount; ++i) {
      if (trace.wait_ns[i] == 0) continue;
      if (!waits.empty()) waits += ",";
      waits += "\"" +
               std::string(WaitEventName(static_cast<WaitEvent>(i + 1))) +
               "_us\":" + Micros(trace.wait_ns[i]);
    }
    if (!waits.empty()) line += ",\"waits\":{" + waits + "}";
    line += ",\"status\":\"" + std::string(ok ? "ok" : "error") + "\"}";
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (sink && sink_) sink_(line);
  if (slow) {
    SlowQueryRecord rec;
    rec.query_id = trace.query_id;
    rec.session_id = trace.session_id;
    rec.user = user;
    rec.statement = trace.statement;
    rec.parse_ns = trace.parse_ns;
    rec.bind_ns = trace.bind_ns;
    rec.optimize_ns = trace.optimize_ns;
    rec.execute_ns = trace.execute_ns;
    rec.total_ns = total_ns;
    rec.rows = trace.rows;
    rec.annotated_plan = trace.annotated_plan;
    for (size_t i = 0; i < kWaitEventCount; ++i) {
      rec.wait_ns[i] = trace.wait_ns[i];
    }
    slow_.push_back(std::move(rec));
    if (slow_.size() > kSlowLogCapacity) slow_.pop_front();
  }
}

}  // namespace exodus::obs

#ifndef EXODUS_OBS_TRACE_H_
#define EXODUS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/wait_event.h"

namespace exodus::obs {

/// Monotonic nanoseconds (steady_clock) for phase and plan-step timing.
inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-statement phase/plan trace, filled as a statement flows through
/// parse -> bind -> optimize -> execute. One stack-allocated instance
/// per statement execution; the executor writes phases and (when asked)
/// the annotated plan, the session supplies text and hands the finished
/// trace to the QueryTracer.
struct StmtTrace {
  /// Monotonically assigned per database (QueryTracer::Begin).
  uint64_t query_id = 0;
  /// Executing session (SessionRegistry id); 0 for sessionless
  /// executions (standalone executors in tests).
  uint64_t session_id = 0;
  /// Statement text; filled lazily by the session only when the tracer
  /// will actually consume it (sink installed or statement was slow).
  std::string statement;
  uint64_t parse_ns = 0;
  uint64_t bind_ns = 0;
  uint64_t optimize_ns = 0;
  uint64_t execute_ns = 0;
  /// Rows returned (retrieves) or affected (updates).
  uint64_t rows = 0;
  /// True when execution reused a cached (prepared) plan.
  bool used_cached_plan = false;
  /// Force annotated-plan capture regardless of duration (EXPLAIN
  /// ANALYZE sets this).
  bool capture_plan = false;
  /// The executor renders the annotated plan when execute_ns reaches
  /// this threshold (copied from the tracer's slow-query threshold at
  /// Begin), so the rendering cost is paid only for slow statements.
  uint64_t plan_capture_threshold_ns = UINT64_MAX;
  /// Plan tree with per-step actuals; empty unless captured.
  std::string annotated_plan;
  /// Per-class wait time during this statement (index = WaitEvent - 1);
  /// folded from the session's ActivitySlot at statement end. Feeds the
  /// JSON `waits` object, the slow-log dominant wait and the
  /// `\explain analyze` Waits line.
  uint64_t wait_ns[kWaitEventCount] = {};

  uint64_t total_wait_ns() const {
    uint64_t t = 0;
    for (uint64_t w : wait_ns) t += w;
    return t;
  }
  /// The class this statement spent the most time waiting on, or kNone.
  WaitEvent DominantWait() const {
    size_t best = 0;
    uint64_t best_ns = 0;
    for (size_t i = 0; i < kWaitEventCount; ++i) {
      if (wait_ns[i] > best_ns) {
        best_ns = wait_ns[i];
        best = i + 1;
      }
    }
    return static_cast<WaitEvent>(best);
  }
};

/// One slow-query log record.
struct SlowQueryRecord {
  uint64_t query_id = 0;
  /// Session the statement ran on — correlates \slowlog with \activity
  /// and the trace sink (0 = sessionless execution).
  uint64_t session_id = 0;
  std::string user;
  std::string statement;
  uint64_t parse_ns = 0;
  uint64_t bind_ns = 0;
  uint64_t optimize_ns = 0;
  uint64_t execute_ns = 0;
  uint64_t total_ns = 0;
  uint64_t rows = 0;
  std::string annotated_plan;
  /// Per-class wait time (index = WaitEvent - 1); the rendering names
  /// the dominant class so a slow statement is a diagnosis, not just a
  /// number.
  uint64_t wait_ns[kWaitEventCount] = {};

  /// Human-readable one-record rendering (shell \slowlog).
  std::string ToString() const;
};

/// Escapes `s` for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// Statement-level tracing for one database: assigns query IDs, records
/// always-on statement metrics into the registry, streams structured
/// JSON trace lines to an optional sink, and keeps a bounded in-memory
/// slow-query log for statements whose total time exceeds a
/// configurable threshold.
///
/// Begin/Finish are called on every statement and are cheap when no
/// sink is installed and no threshold is set: an atomic increment plus
/// a handful of relaxed counter updates.
class QueryTracer {
 public:
  using TraceSink = std::function<void(const std::string& json_line)>;

  /// Number of slow-query records retained (oldest evicted first).
  static constexpr size_t kSlowLogCapacity = 128;

  explicit QueryTracer(MetricsRegistry* registry);

  /// Starts a statement: assigns trace->query_id and copies the
  /// slow-query threshold into trace->plan_capture_threshold_ns.
  void Begin(StmtTrace* trace);

  /// Completes a statement: bumps registry counters, records latency,
  /// emits a JSON trace line to the sink (if any) and appends to the
  /// slow-query log when the total time crosses the threshold.
  /// `trace->statement` must be filled when WantsText() said so.
  void Finish(const StmtTrace& trace, bool ok, const std::string& user);

  /// True when Finish will consume trace.statement for a statement with
  /// this total duration — i.e. a sink is installed or the slow-query
  /// log will record it. Lets the session skip rendering statement text
  /// on the fast path.
  bool WantsText(uint64_t total_ns) const {
    if (has_sink_.load(std::memory_order_relaxed)) return true;
    int64_t t = slow_threshold_ns_.load(std::memory_order_relaxed);
    return t >= 0 && total_ns >= static_cast<uint64_t>(t);
  }

  /// Installs (or clears, with nullptr) the JSON trace sink.
  void SetSink(TraceSink sink);
  bool sink_active() const {
    return has_sink_.load(std::memory_order_relaxed);
  }

  /// Sets the slow-query threshold in microseconds; negative disables.
  void SetSlowQueryThresholdMicros(int64_t micros);
  /// The active threshold in microseconds; -1 when disabled.
  int64_t slow_query_threshold_micros() const;
  /// Threshold in nanoseconds; -1 when disabled (Begin copies this).
  int64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the retained slow-query records (oldest first).
  std::vector<SlowQueryRecord> SlowQueries() const;
  void ClearSlowQueries();

 private:
  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<int64_t> slow_threshold_ns_{-1};
  std::atomic<bool> has_sink_{false};

  mutable std::mutex mu_;  // guards sink_ and slow_
  TraceSink sink_;
  std::deque<SlowQueryRecord> slow_;

  // Always-on registry series.
  Counter* statements_total_;
  Counter* statement_errors_total_;
  Counter* slow_statements_total_;
  Histogram* statement_latency_us_;
};

}  // namespace exodus::obs

#endif  // EXODUS_OBS_TRACE_H_

#include "obs/metrics.h"

namespace exodus::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

void Histogram::Record(uint64_t value) {
  // Bucket i covers [2^(i-1), 2^i); bucket 0 is < 1. The top bucket
  // absorbs everything beyond the last boundary.
  size_t idx = 0;
  while (idx + 1 < kBuckets && (uint64_t{1} << idx) <= value) ++idx;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(size_t i) { return uint64_t{1} << i; }

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::ApproxSum() const {
  uint64_t sum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    sum += buckets_[i].load(std::memory_order_relaxed) * BucketUpperBound(i);
  }
  return sum;
}

void Histogram::Snapshot(uint64_t counts[kBuckets]) const {
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, Kind kind, const std::string& type_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  entries_.emplace_back();
  Entry* e = &entries_.back();
  e->kind = kind;
  e->type_name = type_name;
  index_[name] = e;
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &FindOrCreate(name, Kind::kCounter, "counter")->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &FindOrCreate(name, Kind::kGauge, "gauge")->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &FindOrCreate(name, Kind::kHistogram, "histogram")->histogram;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& kind,
                                       std::function<uint64_t()> fn) {
  Entry* e = FindOrCreate(name, Kind::kCallback, kind);
  std::lock_guard<std::mutex> lock(mu_);
  e->callback = std::move(fn);
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

namespace {

/// "family" of a series: the metric name with any label set stripped
/// (`a_total{op="scan"}` -> `a_total`). One `# TYPE` line per family.
std::string FamilyOf(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splits `name` into (family, label-block-with-braces-or-empty).
void SplitLabels(const std::string& name, std::string* family,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
  } else {
    *family = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  // Snapshot the index under the lock; metric values themselves are
  // atomics (or callbacks over atomics) and are read without it.
  std::map<std::string, const Entry*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : index_) snapshot.emplace(name, entry);
  }

  std::string out;
  std::string last_family;
  for (const auto& [name, entry] : snapshot) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " " + entry->type_name + "\n";
      last_family = family;
    }
    switch (entry->kind) {
      case Kind::kCounter:
        out += name + " " + std::to_string(entry->counter.value()) + "\n";
        break;
      case Kind::kGauge:
        out += name + " " + std::to_string(entry->gauge.value()) + "\n";
        break;
      case Kind::kCallback:
        out += name + " " + std::to_string(entry->callback ? entry->callback()
                                                           : 0) + "\n";
        break;
      case Kind::kHistogram: {
        std::string fam, labels;
        SplitLabels(name, &fam, &labels);
        // `le` joins any existing labels inside one brace block.
        std::string label_prefix =
            labels.empty() ? "{"
                           : labels.substr(0, labels.size() - 1) + ",";
        uint64_t counts[Histogram::kBuckets];
        entry->histogram.Snapshot(counts);
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += counts[i];
          // Skip interior empty tails for brevity; always emit +Inf.
          if (counts[i] == 0 && i + 1 < Histogram::kBuckets) continue;
          out += fam + "_bucket" + label_prefix + "le=\"" +
                 std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += fam + "_bucket" + label_prefix + "le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += fam + "_sum" + labels + " " +
               std::to_string(entry->histogram.ApproxSum()) + "\n";
        out += fam + "_count" + labels + " " + std::to_string(cumulative) +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace exodus::obs

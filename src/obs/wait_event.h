#ifndef EXODUS_OBS_WAIT_EVENT_H_
#define EXODUS_OBS_WAIT_EVENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace exodus::obs {

/// Fixed taxonomy of the places a statement (or the engine on its
/// behalf) can block. Postgres-style wait-event accounting: every class
/// gets a cumulative count + time histogram in the metrics registry,
/// and the *current* wait of each session is published into its
/// ActivitySlot so `\activity` can show what a running statement is
/// stuck on right now. See docs/observability.md for when each fires.
enum class WaitEvent : uint8_t {
  kNone = 0,            ///< not waiting (running on CPU)
  kMvccWriterLatch,     ///< acquiring a per-extent writer latch
  kMvccExclusiveLock,   ///< acquiring the database-exclusive lock
  kWalFsync,            ///< inline WAL write + fdatasync (leader / kSync)
  kWalGroupCommit,      ///< group-commit follower waiting for a batch
  kThreadPoolQueue,     ///< job queued behind busy pool workers
  kServerSend,          ///< server flushing a response frame
  kClientRead,          ///< server blocked reading the next request
};

/// Number of real wait classes (kNone excluded from series).
inline constexpr size_t kWaitEventCount = 7;

/// The `event` label value ("mvcc_writer_latch", ...); "none" for kNone.
const char* WaitEventName(WaitEvent e);

/// Per-class cumulative wait accounting for one database:
/// `exodus_wait_events_total{event=...}` and
/// `exodus_wait_time_us{event=...}` (histogram). Recording is a relaxed
/// counter add plus one histogram bucket add; the whole subsystem can
/// be ablated with EXODUS_WAIT_EVENTS=off (or 0), under which guards
/// skip even the clock reads.
class WaitProfile {
 public:
  explicit WaitProfile(MetricsRegistry* registry);
  WaitProfile(const WaitProfile&) = delete;
  WaitProfile& operator=(const WaitProfile&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Runtime toggle (benchmark ablation); overrides the env default.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records one completed wait of `ns` nanoseconds. No-op when
  /// disabled or for kNone.
  void Record(WaitEvent e, uint64_t ns);

  /// Cumulative count / time series for one class (tests, \waits).
  uint64_t count(WaitEvent e) const;
  const Histogram* histogram(WaitEvent e) const;

  /// False iff EXODUS_WAIT_EVENTS is "off" or "0".
  static bool EnabledFromEnv();

 private:
  std::atomic<bool> enabled_{true};
  Counter* counts_[kWaitEventCount] = {};
  Histogram* times_[kWaitEventCount] = {};
};

/// Statement phase published into the activity slot (coarser than the
/// trace's timings: it answers "what is it doing *now*").
enum class StmtPhase : uint8_t {
  kIdle = 0,
  kParse,
  kBind,
  kOptimize,
  kExecute,
};

const char* StmtPhaseName(StmtPhase p);

/// One session's live activity record, readable lock-free while the
/// session executes. Hot fields (phase, current wait, progress
/// counters, per-class wait accumulation) are relaxed atomics the
/// executing thread stores and readers load; string fields (user,
/// statement text) change only at statement boundaries and are guarded
/// by a tiny mutex taken at begin/end and by snapshot readers — never
/// inside the execution hot loop. TSan-clean by construction.
struct ActivitySlot {
  /// Truncation bound for the published statement text: enough to
  /// recognize the statement, cheap enough to copy per statement.
  static constexpr size_t kMaxStatementBytes = 256;

  uint64_t session_id = 0;

  // --- hot fields: relaxed atomics, stored by the executing thread ---
  std::atomic<bool> active{false};
  std::atomic<uint8_t> phase{0};   ///< StmtPhase
  std::atomic<uint8_t> wait{0};    ///< WaitEvent currently blocking, or kNone
  std::atomic<uint64_t> query_id{0};
  std::atomic<uint64_t> start_ns{0};  ///< MonotonicNowNs at statement begin
  std::atomic<uint64_t> rows{0};      ///< rows produced so far
  std::atomic<uint64_t> batches{0};   ///< batch windows completed so far
  std::atomic<uint64_t> morsels_done{0};
  std::atomic<uint64_t> morsels_total{0};  ///< 0 = not a parallel plan
  /// Per-statement wait time by class (index = WaitEvent - 1); reset at
  /// statement begin, folded into the trace at statement end.
  std::atomic<uint64_t> wait_ns[kWaitEventCount] = {};

  // --- boundary fields: guarded by mu ---
  mutable std::mutex mu;
  std::string user;
  std::string statement;  ///< truncated to kMaxStatementBytes

  /// Marks a statement as running: publishes query id, start time, the
  /// (truncated) text and the session's current user, and zeroes the
  /// progress and wait accumulators.
  void BeginStatement(uint64_t qid, const std::string& user_name,
                      const std::string* text, uint64_t now_ns);
  /// Back to idle. Progress counters stay readable until the next
  /// BeginStatement (a `\activity` right after completion still shows
  /// what just ran as idle).
  void EndStatement();

  void SetPhase(StmtPhase p) {
    phase.store(static_cast<uint8_t>(p), std::memory_order_relaxed);
  }
  void AddRows(uint64_t n) { rows.fetch_add(n, std::memory_order_relaxed); }
  void AddBatches(uint64_t n) {
    batches.fetch_add(n, std::memory_order_relaxed);
  }
};

/// A read-side copy of one slot (SessionRegistry::Snapshot).
struct ActivityRecord {
  uint64_t session_id = 0;
  std::string user;
  bool active = false;
  uint64_t query_id = 0;
  std::string statement;
  uint64_t elapsed_us = 0;  ///< since statement start; 0 when idle
  StmtPhase phase = StmtPhase::kIdle;
  WaitEvent wait = WaitEvent::kNone;
  uint64_t rows = 0;
  uint64_t batches = 0;
  uint64_t morsels_done = 0;
  uint64_t morsels_total = 0;

  /// One `\activity` line.
  std::string ToString() const;
};

/// The per-database directory of live sessions. Register/Unregister
/// bracket a Session's lifetime; Snapshot serves `\activity` and the
/// ACTIVITY wire message. Slot pointers are stable until Unregister.
class SessionRegistry {
 public:
  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  ActivitySlot* Register(const std::string& user);
  void Unregister(ActivitySlot* slot);

  /// Copies every live slot (idle sessions included), session-id order.
  std::vector<ActivityRecord> Snapshot() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<ActivitySlot>> slots_;
};

/// The executing thread's current activity slot, bound for the duration
/// of a statement by ActivityBinding so deep callees (the WAL writer,
/// the concurrency controller) publish waits without plumbing a slot
/// through every signature. Null outside a statement.
ActivitySlot* CurrentActivitySlot();

/// RAII thread-local binding of `slot` (nesting-safe: restores the
/// previous binding, so a statement executed inside another statement's
/// machinery never leaks its slot).
class ActivityBinding {
 public:
  explicit ActivityBinding(ActivitySlot* slot);
  ~ActivityBinding();
  ActivityBinding(const ActivityBinding&) = delete;
  ActivityBinding& operator=(const ActivityBinding&) = delete;

 private:
  ActivitySlot* prev_;
};

/// RAII wait instrument. Construction publishes `event` as the bound
/// slot's current wait (saving the previous one — guards nest) and
/// reads the clock; destruction restores the previous wait, records
/// count + time into the profile and accumulates per-statement wait
/// time on the slot. With a null or disabled profile the guard is a
/// no-op (no clock reads), which is the EXODUS_WAIT_EVENTS=off
/// ablation path.
class WaitEventGuard {
 public:
  /// Uses the thread-local CurrentActivitySlot() for publication.
  WaitEventGuard(WaitProfile* profile, WaitEvent event)
      : WaitEventGuard(profile, event, CurrentActivitySlot()) {}

  /// Explicit-slot form for threads that are not bound to a statement
  /// (the server's connection thread publishing send/read waits).
  WaitEventGuard(WaitProfile* profile, WaitEvent event, ActivitySlot* slot);
  ~WaitEventGuard();

  WaitEventGuard(const WaitEventGuard&) = delete;
  WaitEventGuard& operator=(const WaitEventGuard&) = delete;

 private:
  WaitProfile* profile_;
  ActivitySlot* slot_;
  WaitEvent event_;
  uint8_t prev_ = 0;
  uint64_t t0_ = 0;
};

}  // namespace exodus::obs

#endif  // EXODUS_OBS_WAIT_EVENT_H_

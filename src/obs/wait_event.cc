#include "obs/wait_event.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace exodus::obs {

namespace {

/// Indexed by WaitEvent value minus one (kNone carries no series).
constexpr const char* kWaitEventNames[kWaitEventCount] = {
    "mvcc_writer_latch", "mvcc_exclusive_lock", "wal_fsync",
    "wal_group_commit",  "thread_pool_queue",   "server_send",
    "client_read",
};

/// 0 for kNone (invalid as a series index), 1..kWaitEventCount else.
size_t EventIndex(WaitEvent e) { return static_cast<size_t>(e); }

thread_local ActivitySlot* g_current_slot = nullptr;

}  // namespace

const char* WaitEventName(WaitEvent e) {
  const size_t i = EventIndex(e);
  if (i == 0 || i > kWaitEventCount) return "none";
  return kWaitEventNames[i - 1];
}

const char* StmtPhaseName(StmtPhase p) {
  switch (p) {
    case StmtPhase::kIdle:
      return "idle";
    case StmtPhase::kParse:
      return "parse";
    case StmtPhase::kBind:
      return "bind";
    case StmtPhase::kOptimize:
      return "optimize";
    case StmtPhase::kExecute:
      return "execute";
  }
  return "idle";
}

// ---------------------------------------------------------------------------
// WaitProfile
// ---------------------------------------------------------------------------

bool WaitProfile::EnabledFromEnv() {
  const char* v = std::getenv("EXODUS_WAIT_EVENTS");
  if (v == nullptr) return true;
  return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0;
}

WaitProfile::WaitProfile(MetricsRegistry* registry) {
  enabled_.store(EnabledFromEnv(), std::memory_order_relaxed);
  for (size_t i = 0; i < kWaitEventCount; ++i) {
    const std::string label =
        std::string("{event=\"") + kWaitEventNames[i] + "\"}";
    counts_[i] =
        registry->GetCounter("exodus_wait_events_total" + label);
    times_[i] = registry->GetHistogram("exodus_wait_time_us" + label);
  }
}

void WaitProfile::Record(WaitEvent e, uint64_t ns) {
  const size_t i = EventIndex(e);
  if (i == 0 || i > kWaitEventCount || !enabled()) return;
  counts_[i - 1]->Increment();
  times_[i - 1]->Record(ns / 1000);
}

uint64_t WaitProfile::count(WaitEvent e) const {
  const size_t i = EventIndex(e);
  if (i == 0 || i > kWaitEventCount) return 0;
  return counts_[i - 1]->value();
}

const Histogram* WaitProfile::histogram(WaitEvent e) const {
  const size_t i = EventIndex(e);
  if (i == 0 || i > kWaitEventCount) return nullptr;
  return times_[i - 1];
}

// ---------------------------------------------------------------------------
// ActivitySlot
// ---------------------------------------------------------------------------

void ActivitySlot::BeginStatement(uint64_t qid, const std::string& user_name,
                                  const std::string* text, uint64_t now_ns) {
  {
    std::lock_guard<std::mutex> lock(mu);
    user = user_name;
    if (text != nullptr) {
      statement.assign(*text, 0, std::min(text->size(), kMaxStatementBytes));
    } else {
      statement.clear();
    }
  }
  query_id.store(qid, std::memory_order_relaxed);
  start_ns.store(now_ns, std::memory_order_relaxed);
  phase.store(static_cast<uint8_t>(StmtPhase::kParse),
              std::memory_order_relaxed);
  wait.store(0, std::memory_order_relaxed);
  rows.store(0, std::memory_order_relaxed);
  batches.store(0, std::memory_order_relaxed);
  morsels_done.store(0, std::memory_order_relaxed);
  morsels_total.store(0, std::memory_order_relaxed);
  for (auto& w : wait_ns) w.store(0, std::memory_order_relaxed);
  active.store(true, std::memory_order_release);
}

void ActivitySlot::EndStatement() {
  phase.store(static_cast<uint8_t>(StmtPhase::kIdle),
              std::memory_order_relaxed);
  wait.store(0, std::memory_order_relaxed);
  active.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// ActivityRecord
// ---------------------------------------------------------------------------

std::string ActivityRecord::ToString() const {
  std::string out = "session " + std::to_string(session_id) + " [" + user +
                    "] " + (active ? "active" : "idle");
  if (!active && statement.empty()) return out + "\n";
  out += " #" + std::to_string(query_id);
  if (active) {
    out += " " + std::to_string(elapsed_us) + "us";
    out += " phase=" + std::string(StmtPhaseName(phase));
    if (wait != WaitEvent::kNone) {
      out += " wait=" + std::string(WaitEventName(wait));
    }
  }
  out += " rows=" + std::to_string(rows);
  if (morsels_total > 0) {
    out += " morsels=" + std::to_string(morsels_done) + "/" +
           std::to_string(morsels_total);
  }
  if (!statement.empty()) out += "\n  " + statement;
  out += "\n";
  return out;
}

// ---------------------------------------------------------------------------
// SessionRegistry
// ---------------------------------------------------------------------------

ActivitySlot* SessionRegistry::Register(const std::string& user) {
  auto slot = std::make_unique<ActivitySlot>();
  ActivitySlot* raw = slot.get();
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->user = user;
  }
  std::lock_guard<std::mutex> lock(mu_);
  slot->session_id = next_id_++;
  slots_.push_back(std::move(slot));
  return raw;
}

void SessionRegistry::Unregister(ActivitySlot* slot) {
  if (slot == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->get() == slot) {
      slots_.erase(it);
      return;
    }
  }
}

std::vector<ActivityRecord> SessionRegistry::Snapshot() const {
  const uint64_t now = MonotonicNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActivityRecord> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    ActivityRecord rec;
    rec.session_id = slot->session_id;
    rec.active = slot->active.load(std::memory_order_acquire);
    rec.query_id = slot->query_id.load(std::memory_order_relaxed);
    rec.phase = static_cast<StmtPhase>(
        slot->phase.load(std::memory_order_relaxed));
    rec.wait =
        static_cast<WaitEvent>(slot->wait.load(std::memory_order_relaxed));
    rec.rows = slot->rows.load(std::memory_order_relaxed);
    rec.batches = slot->batches.load(std::memory_order_relaxed);
    rec.morsels_done = slot->morsels_done.load(std::memory_order_relaxed);
    rec.morsels_total = slot->morsels_total.load(std::memory_order_relaxed);
    if (rec.active) {
      const uint64_t t0 = slot->start_ns.load(std::memory_order_relaxed);
      rec.elapsed_us = now > t0 ? (now - t0) / 1000 : 0;
    }
    {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      rec.user = slot->user;
      rec.statement = slot->statement;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

// ---------------------------------------------------------------------------
// Thread-local binding + the wait guard
// ---------------------------------------------------------------------------

ActivitySlot* CurrentActivitySlot() { return g_current_slot; }

ActivityBinding::ActivityBinding(ActivitySlot* slot) : prev_(g_current_slot) {
  g_current_slot = slot;
}

ActivityBinding::~ActivityBinding() { g_current_slot = prev_; }

WaitEventGuard::WaitEventGuard(WaitProfile* profile, WaitEvent event,
                               ActivitySlot* slot)
    : profile_(profile != nullptr && profile->enabled() ? profile : nullptr),
      slot_(slot),
      event_(event) {
  if (profile_ == nullptr) return;  // ablated: no clock, no publication
  t0_ = MonotonicNowNs();
  if (slot_ != nullptr) {
    prev_ = slot_->wait.load(std::memory_order_relaxed);
    slot_->wait.store(static_cast<uint8_t>(event_),
                      std::memory_order_relaxed);
  }
}

WaitEventGuard::~WaitEventGuard() {
  if (profile_ == nullptr) return;
  const uint64_t ns = MonotonicNowNs() - t0_;
  if (slot_ != nullptr) {
    slot_->wait.store(prev_, std::memory_order_relaxed);
    const size_t i = static_cast<size_t>(event_);
    if (i >= 1 && i <= kWaitEventCount) {
      slot_->wait_ns[i - 1].fetch_add(ns, std::memory_order_relaxed);
    }
  }
  profile_->Record(event_, ns);
}

}  // namespace exodus::obs

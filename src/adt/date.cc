#include "adt/date.h"

#include <cstdio>

#include "util/string_util.h"

namespace exodus::adt {

using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {
int g_date_adt_id = -1;

Result<int64_t> IntArg(const std::vector<Value>& args, size_t i,
                       const char* fn) {
  if (i >= args.size() || args[i].kind() != ValueKind::kInt) {
    return Status::TypeError(std::string(fn) + ": expected integer argument");
  }
  return args[i].AsInt();
}

Result<const DatePayload*> DateArg(const std::vector<Value>& args, size_t i,
                                   const char* fn) {
  if (i >= args.size() || args[i].kind() != ValueKind::kAdt ||
      args[i].adt_id() != g_date_adt_id) {
    return Status::TypeError(std::string(fn) + ": expected a Date argument");
  }
  return static_cast<const DatePayload*>(&args[i].adt_payload());
}

bool ValidYmd(int64_t y, int64_t m, int64_t d) {
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  int max_d = kDays[m - 1] + ((m == 2 && leap) ? 1 : 0);
  return d <= max_d;
}

}  // namespace

int64_t DatePayload::DayNumber() const {
  // Howard Hinnant's days_from_civil algorithm.
  int64_t y = year_;
  unsigned m = static_cast<unsigned>(month_);
  unsigned d = static_cast<unsigned>(day_);
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

DatePayload DatePayload::FromDayNumber(int64_t z) {
  // Howard Hinnant's civil_from_days algorithm.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return DatePayload(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                     static_cast<int>(d));
}

std::string DatePayload::Print() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d/%d/%d", month_, day_, year_);
  return buf;
}

bool DatePayload::Equals(const object::AdtPayload& other) const {
  const auto& o = static_cast<const DatePayload&>(other);
  return year_ == o.year_ && month_ == o.month_ && day_ == o.day_;
}

size_t DatePayload::Hash() const {
  return std::hash<int64_t>()(DayNumber());
}

int DatePayload::Compare(const object::AdtPayload& other) const {
  int64_t a = DayNumber();
  int64_t b = static_cast<const DatePayload&>(other).DayNumber();
  return a < b ? -1 : (a > b ? 1 : 0);
}

int DateAdtId() { return g_date_adt_id; }

Value MakeDate(int year, int month, int day) {
  return Value::Adt(g_date_adt_id,
                    std::make_shared<DatePayload>(year, month, day));
}

Result<Value> ParseDate(const std::string& text) {
  int m = 0;
  int d = 0;
  int y = 0;
  if (std::sscanf(text.c_str(), "%d/%d/%d", &m, &d, &y) != 3 ||
      !ValidYmd(y, m, d)) {
    return Status::InvalidArgument("invalid date literal '" + text +
                                   "' (expected \"m/d/yyyy\")");
  }
  return MakeDate(y, m, d);
}

Status InstallDateAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<Status(const std::string&, const extra::Type*)>&
        register_type) {
  auto ctor = [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() == 1 && args[0].kind() == ValueKind::kString) {
      return ParseDate(args[0].AsString());
    }
    if (args.size() == 3) {
      EXODUS_ASSIGN_OR_RETURN(int64_t y, IntArg(args, 0, "Date"));
      EXODUS_ASSIGN_OR_RETURN(int64_t m, IntArg(args, 1, "Date"));
      EXODUS_ASSIGN_OR_RETURN(int64_t d, IntArg(args, 2, "Date"));
      if (!ValidYmd(y, m, d)) {
        return Status::InvalidArgument("Date: invalid year/month/day");
      }
      return MakeDate(static_cast<int>(y), static_cast<int>(m),
                      static_cast<int>(d));
    }
    return Status::TypeError(
        "Date: expected Date(\"m/d/yyyy\") or Date(year, month, day)");
  };
  EXODUS_ASSIGN_OR_RETURN(g_date_adt_id,
                          registry->RegisterType("Date", ctor, -1));

  auto component = [](const char* fn, int which) {
    return [fn, which](const std::vector<Value>& args) -> Result<Value> {
      EXODUS_ASSIGN_OR_RETURN(const DatePayload* d, DateArg(args, 0, fn));
      int v = which == 0 ? d->year() : (which == 1 ? d->month() : d->day());
      return Value::Int(v);
    };
  };
  EXODUS_RETURN_IF_ERROR(
      registry->RegisterFunction("Date", "Year", 1, component("Year", 0)));
  EXODUS_RETURN_IF_ERROR(
      registry->RegisterFunction("Date", "Month", 1, component("Month", 1)));
  EXODUS_RETURN_IF_ERROR(
      registry->RegisterFunction("Date", "Day", 1, component("Day", 2)));

  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Date", "AddDays", 2,
      [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const DatePayload* d,
                                DateArg(args, 0, "AddDays"));
        EXODUS_ASSIGN_OR_RETURN(int64_t n, IntArg(args, 1, "AddDays"));
        DatePayload out = DatePayload::FromDayNumber(d->DayNumber() + n);
        return MakeDate(out.year(), out.month(), out.day());
      }));

  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Date", "DiffDays", 2,
      [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const DatePayload* a,
                                DateArg(args, 0, "DiffDays"));
        EXODUS_ASSIGN_OR_RETURN(const DatePayload* b,
                                DateArg(args, 1, "DiffDays"));
        return Value::Int(a->DayNumber() - b->DayNumber());
      }));

  // `d1 - d2` -> difference in days (overloads the built-in '-').
  EXODUS_RETURN_IF_ERROR(registry->RegisterOperator(
      "-", "Date", "DiffDays", /*precedence=*/6, Assoc::kLeft,
      Fixity::kInfix));

  EXODUS_RETURN_IF_ERROR(registry->RegisterSerialization(
      "Date",
      [](const object::AdtPayload& p) {
        return static_cast<const DatePayload&>(p).Print();
      },
      [](const std::string& s) { return ParseDate(s); }));

  return register_type("Date", store->MakeAdt("Date", g_date_adt_id));
}

}  // namespace exodus::adt

#ifndef EXODUS_ADT_BOX_H_
#define EXODUS_ADT_BOX_H_

#include <functional>
#include <string>

#include "adt/registry.h"
#include "extra/type.h"
#include "object/value.h"
#include "util/result.h"

namespace exodus::adt {

/// An axis-aligned rectangle ADT for the engineering/CAD workloads the
/// paper's introduction motivates (geometric modeling, [Kemp87]).
/// Also demonstrates an *identifier-named* operator, which EXCESS allows
/// ("any legal EXCESS identifier or sequence of punctuation characters
/// may be used" as an operator, §4.1):
///
///   Box(x1, y1, x2, y2)          -- constructor (lo/hi corners)
///   b.Area / b.Width / b.Height
///   b1 overlaps b2               -- registered identifier operator
///   b1.Contains(b2)
class BoxPayload : public object::AdtPayload {
 public:
  BoxPayload(double x1, double y1, double x2, double y2);

  double x1() const { return x1_; }
  double y1() const { return y1_; }
  double x2() const { return x2_; }
  double y2() const { return y2_; }

  std::string Print() const override;
  bool Equals(const object::AdtPayload& other) const override;
  size_t Hash() const override;

 private:
  double x1_, y1_, x2_, y2_;  // normalized: x1 <= x2, y1 <= y2
};

/// The registered id of the Box ADT after installation; -1 before.
int BoxAdtId();

/// Convenience constructor for C++ callers and tests.
object::Value MakeBox(double x1, double y1, double x2, double y2);

/// Registers the Box ADT, its functions, and the `overlaps` operator.
util::Status InstallBoxAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<util::Status(const std::string&, const extra::Type*)>&
        register_type);

}  // namespace exodus::adt

#endif  // EXODUS_ADT_BOX_H_

#ifndef EXODUS_ADT_DATE_H_
#define EXODUS_ADT_DATE_H_

#include <functional>
#include <memory>
#include <string>

#include "adt/registry.h"
#include "extra/type.h"
#include "object/value.h"
#include "util/result.h"

namespace exodus::adt {

/// The Date ADT used throughout the paper's examples (Fig. 1:
/// `birthday: Date`). Dates are totally ordered, so Date attributes can
/// be compared, sorted and B+tree-indexed.
///
/// EXCESS surface:
///   Date("8/23/1988")        -- constructor from m/d/y string
///   Date(1988, 8, 23)        -- constructor from components
///   d.Year / d.Month / d.Day -- component accessors
///   d.AddDays(n)             -- a new date n days later
///   d1 - d2                  -- registered operator: difference in days
class DatePayload : public object::AdtPayload {
 public:
  DatePayload(int year, int month, int day)
      : year_(year), month_(month), day_(day) {}

  int year() const { return year_; }
  int month() const { return month_; }
  int day() const { return day_; }

  /// Days since the proleptic Gregorian epoch (civil day algorithm).
  int64_t DayNumber() const;
  /// Inverse of DayNumber().
  static DatePayload FromDayNumber(int64_t days);

  std::string Print() const override;
  bool Equals(const object::AdtPayload& other) const override;
  size_t Hash() const override;
  bool Comparable() const override { return true; }
  int Compare(const object::AdtPayload& other) const override;

 private:
  int year_;
  int month_;
  int day_;
};

/// The registered id of the Date ADT after installation; -1 before.
int DateAdtId();

/// Convenience: a Date value (for C++ callers and tests).
object::Value MakeDate(int year, int month, int day);

/// Parses "m/d/yyyy".
util::Result<object::Value> ParseDate(const std::string& text);

/// Registers the Date ADT, its functions, and its operators.
util::Status InstallDateAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<util::Status(const std::string&, const extra::Type*)>&
        register_type);

}  // namespace exodus::adt

#endif  // EXODUS_ADT_DATE_H_

#include "adt/registry.h"

#include <algorithm>

#include "adt/box.h"
#include "adt/complex.h"
#include "adt/date.h"

namespace exodus::adt {

using object::Value;
using util::Result;
using util::Status;

Result<int> Registry::RegisterType(const std::string& name, AdtFn constructor,
                                   int constructor_arity) {
  if (type_by_name_.count(name)) {
    return Status::AlreadyExists("ADT '" + name + "' already registered");
  }
  AdtType t;
  t.id = static_cast<int>(types_.size());
  t.name = name;
  t.constructor = std::move(constructor);
  t.constructor_arity = constructor_arity;
  types_.push_back(std::move(t));
  type_by_name_[name] = types_.back().id;
  return types_.back().id;
}

Status Registry::RegisterFunction(const std::string& adt_name,
                                  const std::string& fn_name, int arity,
                                  AdtFn fn) {
  auto it = type_by_name_.find(adt_name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("no ADT named '" + adt_name + "'");
  }
  AdtType& t = types_[static_cast<size_t>(it->second)];
  if (t.functions.count(fn_name)) {
    return Status::AlreadyExists("ADT '" + adt_name +
                                 "' already has a function '" + fn_name + "'");
  }
  t.functions[fn_name] = AdtFunction{fn_name, arity, std::move(fn)};
  return Status::OK();
}

Status Registry::RegisterOperator(const std::string& symbol,
                                  const std::string& adt_name,
                                  const std::string& function, int precedence,
                                  Assoc assoc, Fixity fixity) {
  auto it = type_by_name_.find(adt_name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("no ADT named '" + adt_name + "'");
  }
  const AdtType& t = types_[static_cast<size_t>(it->second)];
  if (!t.functions.count(function)) {
    return Status::NotFound("ADT '" + adt_name + "' has no function '" +
                            function + "' to bind operator '" + symbol + "'");
  }
  for (const OperatorDef& op : operators_) {
    if (op.symbol == symbol && op.adt_id == t.id && op.fixity == fixity) {
      return Status::AlreadyExists("operator '" + symbol +
                                   "' already registered for ADT '" +
                                   adt_name + "'");
    }
  }
  OperatorDef def;
  def.symbol = symbol;
  def.adt_id = t.id;
  def.function = function;
  def.precedence = precedence;
  def.assoc = assoc;
  def.fixity = fixity;
  operators_.push_back(std::move(def));
  return Status::OK();
}

Status Registry::RegisterSerialization(
    const std::string& adt_name,
    std::function<std::string(const object::AdtPayload&)> serialize,
    std::function<util::Result<object::Value>(const std::string&)>
        deserialize) {
  auto it = type_by_name_.find(adt_name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("no ADT named '" + adt_name + "'");
  }
  AdtType& t = types_[static_cast<size_t>(it->second)];
  t.serialize = std::move(serialize);
  t.deserialize = std::move(deserialize);
  return Status::OK();
}

Status Registry::RegisterSetFunction(const std::string& name, SetFn fn) {
  if (set_functions_.count(name)) {
    return Status::AlreadyExists("set function '" + name +
                                 "' already registered");
  }
  set_functions_[name] = std::move(fn);
  return Status::OK();
}

const AdtType* Registry::FindType(const std::string& name) const {
  auto it = type_by_name_.find(name);
  return it == type_by_name_.end() ? nullptr
                                   : &types_[static_cast<size_t>(it->second)];
}

const AdtType* Registry::FindTypeById(int id) const {
  if (id < 0 || id >= static_cast<int>(types_.size())) return nullptr;
  return &types_[static_cast<size_t>(id)];
}

const AdtFunction* Registry::FindFunction(int adt_id,
                                          const std::string& name) const {
  const AdtType* t = FindTypeById(adt_id);
  if (t == nullptr) return nullptr;
  auto it = t->functions.find(name);
  return it == t->functions.end() ? nullptr : &it->second;
}

const OperatorDef* Registry::FindOperator(const std::string& symbol,
                                          int adt_id, Fixity fixity) const {
  for (const OperatorDef& op : operators_) {
    if (op.symbol == symbol && op.adt_id == adt_id && op.fixity == fixity) {
      return &op;
    }
  }
  return nullptr;
}

const SetFn* Registry::FindSetFunction(const std::string& name) const {
  auto it = set_functions_.find(name);
  return it == set_functions_.end() ? nullptr : &it->second;
}

namespace {

/// Generic `median` for any totally ordered element type — the paper's
/// flagship example of an extension POSTGRES could not express generically
/// (§4.3). Works via ValueCompare, so it applies to numerics, strings,
/// enums and comparable ADTs alike.
Result<Value> GenericMedian(const std::vector<Value>& elems) {
  std::vector<Value> sorted;
  for (const Value& v : elems) {
    if (!v.is_null()) sorted.push_back(v);
  }
  if (sorted.empty()) return Value::Null();
  Status sort_error = Status::OK();
  std::sort(sorted.begin(), sorted.end(),
            [&sort_error](const Value& a, const Value& b) {
              auto cmp = object::ValueCompare(a, b);
              if (!cmp.ok()) {
                sort_error = cmp.status();
                return false;
              }
              return *cmp < 0;
            });
  if (!sort_error.ok()) return sort_error;
  return sorted[(sorted.size() - 1) / 2];
}

}  // namespace

Status InstallBuiltinAdts(
    Registry* registry, extra::TypeStore* store,
    const std::function<Status(const std::string&, const extra::Type*)>&
        register_type) {
  EXODUS_RETURN_IF_ERROR(InstallDateAdt(registry, store, register_type));
  EXODUS_RETURN_IF_ERROR(InstallComplexAdt(registry, store, register_type));
  EXODUS_RETURN_IF_ERROR(InstallBoxAdt(registry, store, register_type));
  EXODUS_RETURN_IF_ERROR(
      registry->RegisterSetFunction("median", GenericMedian));
  return Status::OK();
}

}  // namespace exodus::adt

#include "adt/box.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace exodus::adt {

using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {
int g_box_adt_id = -1;

Result<double> NumArg(const std::vector<Value>& args, size_t i,
                      const char* fn) {
  if (i >= args.size() || (args[i].kind() != ValueKind::kInt &&
                           args[i].kind() != ValueKind::kFloat)) {
    return Status::TypeError(std::string(fn) + ": expected numeric argument");
  }
  return args[i].NumericAsDouble();
}

Result<const BoxPayload*> BoxArg(const std::vector<Value>& args, size_t i,
                                 const char* fn) {
  if (i >= args.size() || args[i].kind() != ValueKind::kAdt ||
      args[i].adt_id() != g_box_adt_id) {
    return Status::TypeError(std::string(fn) + ": expected a Box argument");
  }
  return static_cast<const BoxPayload*>(&args[i].adt_payload());
}

}  // namespace

BoxPayload::BoxPayload(double x1, double y1, double x2, double y2)
    : x1_(std::min(x1, x2)),
      y1_(std::min(y1, y2)),
      x2_(std::max(x1, x2)),
      y2_(std::max(y1, y2)) {}

std::string BoxPayload::Print() const {
  return "box[(" + util::FormatDouble(x1_) + "," + util::FormatDouble(y1_) +
         "),(" + util::FormatDouble(x2_) + "," + util::FormatDouble(y2_) +
         ")]";
}

bool BoxPayload::Equals(const object::AdtPayload& other) const {
  const auto& o = static_cast<const BoxPayload&>(other);
  return x1_ == o.x1_ && y1_ == o.y1_ && x2_ == o.x2_ && y2_ == o.y2_;
}

size_t BoxPayload::Hash() const {
  auto h = std::hash<double>();
  return h(x1_) ^ (h(y1_) << 1) ^ (h(x2_) << 2) ^ (h(y2_) << 3);
}

int BoxAdtId() { return g_box_adt_id; }

Value MakeBox(double x1, double y1, double x2, double y2) {
  return Value::Adt(g_box_adt_id,
                    std::make_shared<BoxPayload>(x1, y1, x2, y2));
}

Status InstallBoxAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<Status(const std::string&, const extra::Type*)>&
        register_type) {
  auto ctor = [](const std::vector<Value>& args) -> Result<Value> {
    EXODUS_ASSIGN_OR_RETURN(double x1, NumArg(args, 0, "Box"));
    EXODUS_ASSIGN_OR_RETURN(double y1, NumArg(args, 1, "Box"));
    EXODUS_ASSIGN_OR_RETURN(double x2, NumArg(args, 2, "Box"));
    EXODUS_ASSIGN_OR_RETURN(double y2, NumArg(args, 3, "Box"));
    return MakeBox(x1, y1, x2, y2);
  };
  EXODUS_ASSIGN_OR_RETURN(g_box_adt_id,
                          registry->RegisterType("Box", ctor, 4));

  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Box", "Area", 1, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* b, BoxArg(args, 0, "Area"));
        return Value::Float((b->x2() - b->x1()) * (b->y2() - b->y1()));
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Box", "Width", 1, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* b, BoxArg(args, 0, "Width"));
        return Value::Float(b->x2() - b->x1());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Box", "Height", 1, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* b, BoxArg(args, 0, "Height"));
        return Value::Float(b->y2() - b->y1());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Box", "Overlaps", 2,
      [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* a,
                                BoxArg(args, 0, "Overlaps"));
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* b,
                                BoxArg(args, 1, "Overlaps"));
        bool overlap = a->x1() <= b->x2() && b->x1() <= a->x2() &&
                       a->y1() <= b->y2() && b->y1() <= a->y2();
        return Value::Bool(overlap);
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Box", "Contains", 2,
      [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* a,
                                BoxArg(args, 0, "Contains"));
        EXODUS_ASSIGN_OR_RETURN(const BoxPayload* b,
                                BoxArg(args, 1, "Contains"));
        bool contains = a->x1() <= b->x1() && b->x2() <= a->x2() &&
                        a->y1() <= b->y1() && b->y2() <= a->y2();
        return Value::Bool(contains);
      }));

  // Identifier-named infix operator: `b1 overlaps b2`. Comparison-level
  // precedence (4) so `b1 overlaps b2 and p` parses as expected.
  EXODUS_RETURN_IF_ERROR(registry->RegisterOperator(
      "overlaps", "Box", "Overlaps", 4, Assoc::kLeft, Fixity::kInfix));

  EXODUS_RETURN_IF_ERROR(registry->RegisterSerialization(
      "Box",
      [](const object::AdtPayload& p) {
        const auto& b = static_cast<const BoxPayload&>(p);
        return util::FormatDouble(b.x1()) + " " + util::FormatDouble(b.y1()) +
               " " + util::FormatDouble(b.x2()) + " " +
               util::FormatDouble(b.y2());
      },
      [](const std::string& s) -> Result<Value> {
        double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
        if (std::sscanf(s.c_str(), "%lf %lf %lf %lf", &x1, &y1, &x2, &y2) !=
            4) {
          return Status::InvalidArgument("corrupt Box payload");
        }
        return MakeBox(x1, y1, x2, y2);
      }));

  return register_type("Box", store->MakeAdt("Box", g_box_adt_id));
}

}  // namespace exodus::adt

#ifndef EXODUS_ADT_COMPLEX_H_
#define EXODUS_ADT_COMPLEX_H_

#include <functional>
#include <string>

#include "adt/registry.h"
#include "extra/type.h"
#include "object/value.h"
#include "util/result.h"

namespace exodus::adt {

/// The Complex-number ADT of paper Figure 7 ("a slightly simplified E
/// interface definition for the Complex dbclass").
///
/// EXCESS surface:
///   Complex(1.0, 2.0)                -- constructor
///   c.Re / c.Im                      -- component accessors
///   Add(c1, c2) or c1.Add(c2)        -- function invocation, both forms
///   c1 + c2, c1 * c2                 -- registered operators
///   c.Magnitude                      -- |c|
class ComplexPayload : public object::AdtPayload {
 public:
  ComplexPayload(double re, double im) : re_(re), im_(im) {}

  double re() const { return re_; }
  double im() const { return im_; }

  std::string Print() const override;
  bool Equals(const object::AdtPayload& other) const override;
  size_t Hash() const override;

 private:
  double re_;
  double im_;
};

/// The registered id of the Complex ADT after installation; -1 before.
int ComplexAdtId();

/// Convenience constructor for C++ callers and tests.
object::Value MakeComplex(double re, double im);

/// Registers the Complex ADT, its functions (Add, Sub, Mul, Re, Im,
/// Magnitude) and the '+'/'*' operator overloads.
util::Status InstallComplexAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<util::Status(const std::string&, const extra::Type*)>&
        register_type);

}  // namespace exodus::adt

#endif  // EXODUS_ADT_COMPLEX_H_

#include "adt/complex.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace exodus::adt {

using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {
int g_complex_adt_id = -1;

Result<double> NumArg(const std::vector<Value>& args, size_t i,
                      const char* fn) {
  if (i >= args.size() || (args[i].kind() != ValueKind::kInt &&
                           args[i].kind() != ValueKind::kFloat)) {
    return Status::TypeError(std::string(fn) + ": expected numeric argument");
  }
  return args[i].NumericAsDouble();
}

Result<const ComplexPayload*> CArg(const std::vector<Value>& args, size_t i,
                                   const char* fn) {
  if (i >= args.size() || args[i].kind() != ValueKind::kAdt ||
      args[i].adt_id() != g_complex_adt_id) {
    return Status::TypeError(std::string(fn) +
                             ": expected a Complex argument");
  }
  return static_cast<const ComplexPayload*>(&args[i].adt_payload());
}

}  // namespace

std::string ComplexPayload::Print() const {
  return "(" + util::FormatDouble(re_) + " + " + util::FormatDouble(im_) +
         "i)";
}

bool ComplexPayload::Equals(const object::AdtPayload& other) const {
  const auto& o = static_cast<const ComplexPayload&>(other);
  return re_ == o.re_ && im_ == o.im_;
}

size_t ComplexPayload::Hash() const {
  return std::hash<double>()(re_) ^ (std::hash<double>()(im_) << 1);
}

int ComplexAdtId() { return g_complex_adt_id; }

Value MakeComplex(double re, double im) {
  return Value::Adt(g_complex_adt_id,
                    std::make_shared<ComplexPayload>(re, im));
}

Status InstallComplexAdt(
    Registry* registry, extra::TypeStore* store,
    const std::function<Status(const std::string&, const extra::Type*)>&
        register_type) {
  auto ctor = [](const std::vector<Value>& args) -> Result<Value> {
    EXODUS_ASSIGN_OR_RETURN(double re, NumArg(args, 0, "Complex"));
    EXODUS_ASSIGN_OR_RETURN(double im, NumArg(args, 1, "Complex"));
    return MakeComplex(re, im);
  };
  EXODUS_ASSIGN_OR_RETURN(g_complex_adt_id,
                          registry->RegisterType("Complex", ctor, 2));

  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Add", 2, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a, CArg(args, 0, "Add"));
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* b, CArg(args, 1, "Add"));
        return MakeComplex(a->re() + b->re(), a->im() + b->im());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Sub", 2, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a, CArg(args, 0, "Sub"));
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* b, CArg(args, 1, "Sub"));
        return MakeComplex(a->re() - b->re(), a->im() - b->im());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Mul", 2, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a, CArg(args, 0, "Mul"));
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* b, CArg(args, 1, "Mul"));
        return MakeComplex(a->re() * b->re() - a->im() * b->im(),
                           a->re() * b->im() + a->im() * b->re());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Re", 1, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a, CArg(args, 0, "Re"));
        return Value::Float(a->re());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Im", 1, [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a, CArg(args, 0, "Im"));
        return Value::Float(a->im());
      }));
  EXODUS_RETURN_IF_ERROR(registry->RegisterFunction(
      "Complex", "Magnitude", 1,
      [](const std::vector<Value>& args) -> Result<Value> {
        EXODUS_ASSIGN_OR_RETURN(const ComplexPayload* a,
                                CArg(args, 0, "Magnitude"));
        return Value::Float(std::hypot(a->re(), a->im()));
      }));

  // Operator overloads: '+' -> Add, '-' -> Sub, '*' -> Mul (paper §4.1).
  EXODUS_RETURN_IF_ERROR(registry->RegisterOperator(
      "+", "Complex", "Add", 6, Assoc::kLeft, Fixity::kInfix));
  EXODUS_RETURN_IF_ERROR(registry->RegisterOperator(
      "-", "Complex", "Sub", 6, Assoc::kLeft, Fixity::kInfix));
  EXODUS_RETURN_IF_ERROR(registry->RegisterOperator(
      "*", "Complex", "Mul", 7, Assoc::kLeft, Fixity::kInfix));

  EXODUS_RETURN_IF_ERROR(registry->RegisterSerialization(
      "Complex",
      [](const object::AdtPayload& p) {
        const auto& c = static_cast<const ComplexPayload&>(p);
        return util::FormatDouble(c.re()) + " " + util::FormatDouble(c.im());
      },
      [](const std::string& s) -> Result<Value> {
        double re = 0;
        double im = 0;
        if (std::sscanf(s.c_str(), "%lf %lf", &re, &im) != 2) {
          return Status::InvalidArgument("corrupt Complex payload");
        }
        return MakeComplex(re, im);
      }));

  return register_type("Complex",
                       store->MakeAdt("Complex", g_complex_adt_id));
}

}  // namespace exodus::adt

#ifndef EXODUS_ADT_REGISTRY_H_
#define EXODUS_ADT_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::adt {

/// Signature of an ADT function: takes evaluated argument values and
/// returns a value. ADT functions are side-effect free.
using AdtFn = std::function<util::Result<object::Value>(
    const std::vector<object::Value>&)>;

/// Signature of a generic *set* function (paper §4.3: e.g. a "median"
/// aggregate that works for any totally ordered type). It receives the
/// collected element values of a set/aggregate input.
using SetFn = std::function<util::Result<object::Value>(
    const std::vector<object::Value>&)>;

/// A named function attached to an ADT.
struct AdtFunction {
  std::string name;
  /// Number of arguments including the receiver; -1 means variadic.
  int arity = -1;
  AdtFn fn;
};

enum class Assoc { kLeft, kRight };
enum class Fixity { kInfix, kPrefix };

/// A registered operator (paper §4.1: existing EXCESS operators can be
/// overloaded; new operators — punctuation sequences or identifiers —
/// can be introduced with explicit precedence and associativity).
struct OperatorDef {
  std::string symbol;
  /// ADT the operator dispatches on (the first operand's ADT).
  int adt_id = -1;
  /// Name of the ADT function implementing the operator.
  std::string function;
  /// Parser binding power; higher binds tighter. Built-in reference
  /// points: or=1, and=2, comparison=4, +/-=6, */÷=7, prefix=9.
  int precedence = 6;
  Assoc assoc = Assoc::kLeft;
  Fixity fixity = Fixity::kInfix;
};

/// A registered abstract data type.
struct AdtType {
  int id = -1;
  std::string name;
  /// Constructor: invoked as `Name(args...)` in EXCESS.
  AdtFn constructor;
  int constructor_arity = -1;
  std::map<std::string, AdtFunction> functions;
  /// Optional persistence hooks (storage::Serializer uses these).
  std::function<std::string(const object::AdtPayload&)> serialize;
  std::function<util::Result<object::Value>(const std::string&)> deserialize;
};

/// The ADT registry — this reproduction's stand-in for ADTs written in
/// the E language (see DESIGN.md substitution table). It provides the
/// same query-level capabilities: new base types, functions, operator
/// registration with precedence/associativity/fixity, and generic set
/// functions.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers a new ADT; `constructor` implements `name(args...)`.
  /// Returns the ADT id. Fails if the name is taken.
  util::Result<int> RegisterType(const std::string& name, AdtFn constructor,
                                 int constructor_arity);

  /// Attaches a function to an ADT. The receiver is passed as the first
  /// argument for method-style invocation `expr.Fn(args)`.
  util::Status RegisterFunction(const std::string& adt_name,
                                const std::string& fn_name, int arity,
                                AdtFn fn);

  /// Registers `symbol` as an operator on `adt_name`, implemented by the
  /// already-registered function `function`. Existing EXCESS operators
  /// may be overloaded; for brand-new symbols the precedence declared
  /// here feeds the parser's dynamic operator table.
  util::Status RegisterOperator(const std::string& symbol,
                                const std::string& adt_name,
                                const std::string& function, int precedence,
                                Assoc assoc, Fixity fixity);

  /// Registers a generic set function (e.g. "median") usable as an
  /// aggregate on any set whose elements satisfy the function's own
  /// requirements.
  util::Status RegisterSetFunction(const std::string& name, SetFn fn);

  /// Registers persistence hooks for an ADT so its values survive
  /// Database::Save / Load.
  util::Status RegisterSerialization(
      const std::string& adt_name,
      std::function<std::string(const object::AdtPayload&)> serialize,
      std::function<util::Result<object::Value>(const std::string&)>
          deserialize);

  const AdtType* FindType(const std::string& name) const;
  const AdtType* FindTypeById(int id) const;
  const AdtFunction* FindFunction(int adt_id, const std::string& name) const;
  /// The operator binding for (symbol, adt of first operand), or nullptr.
  const OperatorDef* FindOperator(const std::string& symbol, int adt_id,
                                  Fixity fixity) const;
  const SetFn* FindSetFunction(const std::string& name) const;

  /// All registered operator symbols with their (first-registration)
  /// precedence/assoc/fixity — consumed by the EXCESS parser to extend
  /// its expression grammar dynamically.
  const std::vector<OperatorDef>& operators() const { return operators_; }

  const std::vector<AdtType>& types() const { return types_; }

 private:
  std::vector<AdtType> types_;
  std::unordered_map<std::string, int> type_by_name_;
  std::vector<OperatorDef> operators_;
  std::unordered_map<std::string, SetFn> set_functions_;
};

/// Installs the built-in ADT library (Date, Complex, Box) plus the
/// generic `median` set function into `registry`, creating the matching
/// extra::Type nodes in `store` and recording them via `register_type`
/// (normally extra::Catalog::RegisterAdtType).
util::Status InstallBuiltinAdts(
    Registry* registry, extra::TypeStore* store,
    const std::function<util::Status(const std::string&, const extra::Type*)>&
        register_type);

}  // namespace exodus::adt

#endif  // EXODUS_ADT_REGISTRY_H_

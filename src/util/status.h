#ifndef EXODUS_UTIL_STATUS_H_
#define EXODUS_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace exodus::util {

/// Error categories used throughout the EXTRA/EXCESS system.
///
/// The project does not use C++ exceptions; every fallible operation
/// returns a `Status` (or a `Result<T>`, see result.h). This mirrors the
/// error-handling idiom of Arrow / RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // malformed input that is not a parse error
  kParseError,         // EXCESS lexical/syntactic error
  kTypeError,          // EXTRA type-check / binder failure
  kNotFound,           // missing catalog entry, object, attribute, ...
  kAlreadyExists,      // duplicate definition
  kConstraintViolation,// ownership / referential-integrity violation
  kPermissionDenied,   // authorization failure
  kOutOfRange,         // array index, arity, numeric range
  kIoError,            // storage manager failure
  kNotImplemented,
  kInternal,           // invariant breakage; indicates a bug
};

/// Human-readable name of a status code (e.g. "TypeError").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value.
///
/// `Status::OK()` is represented by a null state pointer, making the
/// success path allocation-free and cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace exodus::util

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define EXODUS_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::exodus::util::Status _st = (expr);               \
    if (!_st.ok()) return _st;                         \
  } while (0)

#endif  // EXODUS_UTIL_STATUS_H_

#ifndef EXODUS_UTIL_THREAD_POOL_H_
#define EXODUS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace exodus::util {

/// A fixed-size pool of worker threads draining a FIFO job queue.
///
/// Submit() enqueues a job and returns immediately; jobs run on the
/// next free worker in submission order. Shutdown() (also run by the
/// destructor) stops intake, drains every job already queued and joins
/// the workers — in-flight work is never dropped, which is what lets
/// the query server shut down gracefully on SIGINT.
///
/// Worker threads are spawned lazily on the first Submit(): a pool
/// that is constructed but never used (every Database owns one for
/// intra-query parallelism, including the hundreds of short-lived
/// Databases the test suite creates) costs nothing but the object.
/// size() reports the configured width either way.
///
/// Callers needing a result pair Submit with a std::promise/future or
/// their own synchronization; the pool itself is fire-and-forget.
class ThreadPool {
 public:
  /// Configures `num_threads` workers (at least one); none start until
  /// the first Submit().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job` and returns true; returns false (without enqueuing)
  /// once Shutdown() has begun, so callers waiting on a job's side
  /// effects can fall back instead of blocking forever.
  bool Submit(std::function<void()> job);

  /// Installs a hook invoked on the worker thread with each job's queue
  /// wait (enqueue -> dequeue, nanoseconds) just before the job runs.
  /// Keeps the pool free of any observability dependency: the Database
  /// points this at its wait profile (`thread_pool_queue` wait events).
  /// Set once before the pool is shared across threads; null clears.
  void SetQueueWaitHook(std::function<void(uint64_t wait_ns)> hook);

  /// Drains the queue and joins all workers. Idempotent.
  void Shutdown();

  /// Configured worker count (threads may not have spawned yet).
  size_t size() const { return target_threads_; }

  /// Threads actually running (0 until the first Submit).
  size_t spawned() const;

  /// Jobs currently queued (excluding ones being executed).
  size_t queued() const;

 private:
  void WorkerLoop();
  void SpawnLocked();  // requires mu_ held

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::function<void(uint64_t)> queue_wait_hook_;  // guarded by mu_
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t target_threads_ = 1;
  bool shutting_down_ = false;
};

}  // namespace exodus::util

#endif  // EXODUS_UTIL_THREAD_POOL_H_

#ifndef EXODUS_UTIL_THREAD_POOL_H_
#define EXODUS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace exodus::util {

/// A fixed-size pool of worker threads draining a FIFO job queue.
///
/// Submit() enqueues a job and returns immediately; jobs run on the
/// next free worker in submission order. Shutdown() (also run by the
/// destructor) stops intake, drains every job already queued and joins
/// the workers — in-flight work is never dropped, which is what lets
/// the query server shut down gracefully on SIGINT.
///
/// Callers needing a result pair Submit with a std::promise/future or
/// their own synchronization; the pool itself is fire-and-forget.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job` and returns true; returns false (without enqueuing)
  /// once Shutdown() has begun, so callers waiting on a job's side
  /// effects can fall back instead of blocking forever.
  bool Submit(std::function<void()> job);

  /// Drains the queue and joins all workers. Idempotent.
  void Shutdown();

  size_t size() const { return workers_.size(); }

  /// Jobs currently queued (excluding ones being executed).
  size_t queued() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
};

}  // namespace exodus::util

#endif  // EXODUS_UTIL_THREAD_POOL_H_

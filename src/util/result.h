#ifndef EXODUS_UTIL_RESULT_H_
#define EXODUS_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace exodus::util {

/// A value-or-error holder, the project's counterpart to `arrow::Result`.
///
/// A `Result<T>` holds either a `T` (success) or a non-OK `Status`. Use
/// `ok()` to discriminate, `ValueOrDie()` / `*result` to access the value
/// and `status()` to access the error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (failure). Constructing a Result from
  /// an OK status is a programming error and is converted to kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out of the result. Requires `ok()`.
  T MoveValueUnsafe() { return std::get<T>(std::move(repr_)); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace exodus::util

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status
/// from the enclosing function, otherwise move-assigns the value to `lhs`.
#define EXODUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValueUnsafe()

#define EXODUS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define EXODUS_ASSIGN_OR_RETURN_CONCAT(x, y) \
  EXODUS_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define EXODUS_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  EXODUS_ASSIGN_OR_RETURN_IMPL(                                           \
      EXODUS_ASSIGN_OR_RETURN_CONCAT(_exodus_result_, __COUNTER__), lhs, \
      rexpr)

#endif  // EXODUS_UTIL_RESULT_H_

#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace exodus::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips but is ugly; try increasing precision until the value
  // parses back exactly.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double parsed = 0;
    std::from_chars(buf, buf + std::strlen(buf), parsed);
    if (parsed == v) break;
  }
  std::string out(buf);
  if (out.find('.') == std::string::npos && out.find('e') == std::string::npos &&
      out.find("inf") == std::string::npos && out.find("nan") == std::string::npos) {
    out += ".0";
  }
  return out;
}

}  // namespace exodus::util

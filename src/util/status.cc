#include "util/status.h"

namespace exodus::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace exodus::util

#include "util/thread_pool.h"

#include <chrono>
#include <utility>

namespace exodus::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  target_threads_ = num_threads;
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::SpawnLocked() {
  workers_.reserve(target_threads_);
  for (size_t i = 0; i < target_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    if (workers_.empty()) SpawnLocked();
    if (queue_wait_hook_) {
      // Wrap so the worker reports enqueue -> dequeue latency before
      // running the job. Copying the hook keeps the wrapper valid even
      // if the hook is cleared while the job is queued.
      const auto enqueued = std::chrono::steady_clock::now();
      queue_.push_back(
          [hook = queue_wait_hook_, enqueued, job = std::move(job)] {
            const auto now = std::chrono::steady_clock::now();
            hook(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - enqueued)
                    .count()));
            job();
          });
    } else {
      queue_.push_back(std::move(job));
    }
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::SetQueueWaitHook(std::function<void(uint64_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_wait_hook_ = std::move(hook);
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // A second caller must still wait for the joins below, but the
      // destructor is the only double-caller in practice and joins are
      // complete by then.
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace exodus::util

#ifndef EXODUS_UTIL_STRING_UTIL_H_
#define EXODUS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace exodus::util {

/// Returns `s` converted to lower case (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` converted to upper case (ASCII only).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on every occurrence of `sep`; does not merge empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Escapes a string for embedding in an EXCESS string literal: doubles
/// backslashes and escapes double quotes and control characters.
std::string EscapeString(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double the way EXCESS prints float values: shortest
/// representation that round-trips, always containing '.' or 'e'.
std::string FormatDouble(double v);

}  // namespace exodus::util

#endif  // EXODUS_UTIL_STRING_UTIL_H_

#include "extra/lattice.h"

#include <deque>
#include <unordered_set>

namespace exodus::extra {

const std::vector<const Type*> TypeLattice::kEmpty;

void TypeLattice::AddType(const Type* type) {
  order_.push_back(type);
  subtypes_.try_emplace(type);
  for (const Type* super : type->supertypes()) {
    subtypes_[super].push_back(type);
  }
}

const std::vector<const Type*>& TypeLattice::DirectSubtypes(
    const Type* type) const {
  auto it = subtypes_.find(type);
  return it == subtypes_.end() ? kEmpty : it->second;
}

std::vector<const Type*> TypeLattice::TransitiveSubtypes(
    const Type* type) const {
  std::vector<const Type*> out;
  std::unordered_set<const Type*> seen;
  std::deque<const Type*> queue{type};
  while (!queue.empty()) {
    const Type* t = queue.front();
    queue.pop_front();
    if (!seen.insert(t).second) continue;
    out.push_back(t);
    for (const Type* sub : DirectSubtypes(t)) queue.push_back(sub);
  }
  return out;
}

std::vector<const Type*> TypeLattice::Linearize(const Type* type) const {
  std::vector<const Type*> out;
  std::unordered_set<const Type*> seen;
  std::deque<const Type*> queue{type};
  while (!queue.empty()) {
    const Type* t = queue.front();
    queue.pop_front();
    if (!seen.insert(t).second) continue;
    out.push_back(t);
    for (const Type* super : t->supertypes()) queue.push_back(super);
  }
  return out;
}

int TypeLattice::Distance(const Type* sub, const Type* super) const {
  if (sub == super) return 0;
  std::unordered_set<const Type*> seen{sub};
  std::deque<std::pair<const Type*, int>> queue{{sub, 0}};
  while (!queue.empty()) {
    auto [t, d] = queue.front();
    queue.pop_front();
    for (const Type* s : t->supertypes()) {
      if (s == super) return d + 1;
      if (seen.insert(s).second) queue.emplace_back(s, d + 1);
    }
  }
  return -1;
}

}  // namespace exodus::extra

#ifndef EXODUS_EXTRA_LATTICE_H_
#define EXODUS_EXTRA_LATTICE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "extra/type.h"

namespace exodus::extra {

/// Maintains the EXTRA type lattice: the multiple-inheritance DAG over
/// schema (tuple) types. Supertype edges live in the Type nodes
/// themselves; this class maintains the reverse (subtype) edges and
/// answers lattice queries used by the binder and by function/procedure
/// inheritance with late binding (paper §4.2).
class TypeLattice {
 public:
  TypeLattice() = default;
  TypeLattice(const TypeLattice&) = delete;
  TypeLattice& operator=(const TypeLattice&) = delete;

  /// Records a newly defined tuple type (its supertypes must already be
  /// registered).
  void AddType(const Type* type);

  /// Direct subtypes of `type` (empty if none / unknown).
  const std::vector<const Type*>& DirectSubtypes(const Type* type) const;

  /// All transitive subtypes of `type`, including `type` itself.
  std::vector<const Type*> TransitiveSubtypes(const Type* type) const;

  /// All transitive supertypes of `type`, including `type` itself, in
  /// method-resolution order: `type` first, then supertypes breadth-first
  /// in declaration order (duplicates from diamonds removed, first
  /// occurrence kept). Used to pick the most specific function override.
  std::vector<const Type*> Linearize(const Type* type) const;

  /// Distance (shortest supertype-edge path) from `sub` up to `super`,
  /// or -1 if `sub` is not a subtype of `super`.
  int Distance(const Type* sub, const Type* super) const;

  /// All registered tuple types, in definition order.
  const std::vector<const Type*>& all_types() const { return order_; }

 private:
  std::unordered_map<const Type*, std::vector<const Type*>> subtypes_;
  std::vector<const Type*> order_;
  static const std::vector<const Type*> kEmpty;
};

}  // namespace exodus::extra

#endif  // EXODUS_EXTRA_LATTICE_H_

#include "extra/catalog.h"

namespace exodus::extra {

using util::Result;
using util::Status;

Status Catalog::RegisterType(const std::string& name, const Type* type) {
  if (named_types_.count(name)) {
    return Status::AlreadyExists("type '" + name + "' already defined");
  }
  if (named_.count(name)) {
    return Status::AlreadyExists("'" + name +
                                 "' already names a database object");
  }
  named_types_[name] = type;
  type_order_.emplace_back(name, type);
  if (type->is_tuple()) lattice_.AddType(type);
  BumpGeneration();
  return Status::OK();
}

Result<const Type*> Catalog::FindType(const std::string& name) const {
  auto it = named_types_.find(name);
  if (it == named_types_.end()) {
    return Status::NotFound("no type named '" + name + "'");
  }
  return it->second;
}

Status Catalog::CreateNamed(const std::string& name, const Type* type,
                            object::Value initial,
                            const std::string& creator) {
  if (named_.count(name)) {
    return Status::AlreadyExists("database object '" + name +
                                 "' already exists");
  }
  if (named_types_.count(name)) {
    return Status::AlreadyExists("'" + name + "' already names a type");
  }
  NamedObject obj;
  obj.name = name;
  obj.type = type;
  obj.Reset(std::move(initial));
  obj.creator = creator;
  named_.emplace(name, std::move(obj));
  BumpGeneration();
  return Status::OK();
}

NamedObject* Catalog::FindNamed(const std::string& name) {
  auto it = named_.find(name);
  return it == named_.end() ? nullptr : &it->second;
}

const NamedObject* Catalog::FindNamed(const std::string& name) const {
  auto it = named_.find(name);
  return it == named_.end() ? nullptr : &it->second;
}

Status Catalog::DropNamed(const std::string& name) {
  if (named_.erase(name) == 0) {
    return Status::NotFound("no database object named '" + name + "'");
  }
  BumpGeneration();
  return Status::OK();
}

}  // namespace exodus::extra

#include "extra/type.h"

#include <algorithm>

namespace exodus::extra {

using util::Result;
using util::Status;

Result<int> Type::EnumOrdinal(const std::string& label) const {
  for (size_t i = 0; i < enum_labels_.size(); ++i) {
    if (enum_labels_[i] == label) return static_cast<int>(i);
  }
  return Status::NotFound("enum " + name_ + " has no label '" + label + "'");
}

int Type::AttributeIndex(const std::string& name) const {
  auto it = attr_index_.find(name);
  return it == attr_index_.end() ? -1 : it->second;
}

Result<const Attribute*> Type::FindAttribute(const std::string& name) const {
  int idx = AttributeIndex(name);
  if (idx < 0) {
    return Status::NotFound("type " + name_ + " has no attribute '" + name +
                            "'");
  }
  return &resolved_attrs_[idx];
}

bool Type::IsSubtypeOf(const Type* other) const {
  if (this == other) return true;
  for (const Type* super : supertypes_) {
    if (super->IsSubtypeOf(other)) return true;
  }
  return false;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kInt2:
      return "int2";
    case TypeKind::kInt4:
      return "int4";
    case TypeKind::kInt8:
      return "int8";
    case TypeKind::kFloat4:
      return "float4";
    case TypeKind::kFloat8:
      return "float8";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kChar:
      return "char[" + std::to_string(char_length_) + "]";
    case TypeKind::kText:
      return "text";
    case TypeKind::kEnum:
      return name_;
    case TypeKind::kAdt:
      return name_;
    case TypeKind::kTuple:
      return name_.empty() ? "<anonymous tuple>" : name_;
    case TypeKind::kSet:
      return "{" + elem_->ToString() + "}";
    case TypeKind::kArray:
      if (array_size_ > 0) {
        return "[" + std::to_string(array_size_) + "] " + elem_->ToString();
      }
      return "[*] " + elem_->ToString();
    case TypeKind::kRef:
      return std::string(owned_ ? "own ref " : "ref ") + target_->ToString();
  }
  return "<unknown>";
}

TypeStore::TypeStore() {
  auto make = [this](TypeKind k) {
    return Intern(std::unique_ptr<Type>(new Type(k)));
  };
  int2_ = make(TypeKind::kInt2);
  int4_ = make(TypeKind::kInt4);
  int8_ = make(TypeKind::kInt8);
  float4_ = make(TypeKind::kFloat4);
  float8_ = make(TypeKind::kFloat8);
  bool_ = make(TypeKind::kBool);
  text_ = make(TypeKind::kText);
}

const Type* TypeStore::Intern(std::unique_ptr<Type> t) {
  pool_.push_back(std::move(t));
  return pool_.back().get();
}

const Type* TypeStore::Char(size_t n) {
  auto it = char_types_.find(n);
  if (it != char_types_.end()) return it->second;
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kChar));
  t->char_length_ = n;
  const Type* interned = Intern(std::move(t));
  char_types_[n] = interned;
  return interned;
}

const Type* TypeStore::MakeEnum(std::string name,
                                std::vector<std::string> labels) {
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kEnum));
  t->name_ = std::move(name);
  t->enum_labels_ = std::move(labels);
  return Intern(std::move(t));
}

const Type* TypeStore::MakeAdt(std::string name, int adt_id) {
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kAdt));
  t->name_ = std::move(name);
  t->adt_id_ = adt_id;
  return Intern(std::move(t));
}

const Type* TypeStore::MakeSet(const Type* elem) {
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kSet));
  t->elem_ = elem;
  return Intern(std::move(t));
}

const Type* TypeStore::MakeArray(const Type* elem, size_t size) {
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kArray));
  t->elem_ = elem;
  t->array_size_ = size;
  return Intern(std::move(t));
}

const Type* TypeStore::MakeRef(const Type* target, bool owned) {
  auto t = std::unique_ptr<Type>(new Type(TypeKind::kRef));
  t->target_ = target;
  t->owned_ = owned;
  return Intern(std::move(t));
}

Result<const Type*> TypeStore::MakeTuple(
    std::string name, std::vector<const Type*> supertypes,
    std::vector<std::vector<Rename>> renames,
    std::vector<Attribute> own_attrs) {
  EXODUS_ASSIGN_OR_RETURN(
      Type * t, BeginTuple(std::move(name), std::move(supertypes),
                           std::move(renames)));
  EXODUS_RETURN_IF_ERROR(FinishTuple(t, std::move(own_attrs)));
  return const_cast<const Type*>(t);
}

Result<Type*> TypeStore::BeginTuple(std::string name,
                                    std::vector<const Type*> supertypes,
                                    std::vector<std::vector<Rename>> renames) {
  if (renames.size() != supertypes.size()) {
    return Status::Internal("renames list does not match supertypes list");
  }
  auto owned = std::unique_ptr<Type>(new Type(TypeKind::kTuple));
  Type* t = owned.get();
  t->name_ = std::move(name);
  t->supertypes_ = std::move(supertypes);
  t->renames_ = std::move(renames);
  Intern(std::move(owned));
  return t;
}

namespace {

/// True if `t` transitively embeds `target` as an own (by-value) tuple.
bool EmbedsOwn(const Type* t, const Type* target) {
  if (t == nullptr) return false;
  switch (t->kind()) {
    case TypeKind::kTuple:
      if (t == target) return true;
      for (const Attribute& a : t->attributes()) {
        if (EmbedsOwn(a.type, target)) return true;
      }
      return false;
    case TypeKind::kSet:
    case TypeKind::kArray:
      return EmbedsOwn(t->element_type(), target);
    case TypeKind::kRef:
      return false;  // references break embedding cycles
    default:
      return false;
  }
}

}  // namespace

Status TypeStore::FinishTuple(Type* t, std::vector<Attribute> own_attrs) {
  const std::vector<const Type*>& supertypes = t->supertypes_;
  const std::vector<std::vector<Rename>>& renames = t->renames_;
  t->own_attrs_ = std::move(own_attrs);

  // Resolve the inherited attribute set: walk direct supertypes in
  // declaration order, apply renames, then append local attributes.
  // A name clash between attributes inherited from two supertypes is a
  // conflict unless both trace back to the *same* origin attribute of a
  // shared ancestor (diamond inheritance). The paper (Fig. 3) requires
  // explicit renaming; no automatic resolution is performed.
  std::vector<Attribute> resolved;
  // Maps resolved name -> "origin key" (ancestor type name + original
  // attribute name), used to recognize benign diamonds.
  std::unordered_map<std::string, std::string> origin_of;

  for (size_t si = 0; si < supertypes.size(); ++si) {
    const Type* super = supertypes[si];
    if (super == nullptr || !super->is_tuple()) {
      return Status::TypeError("supertype of '" + t->name_ +
                               "' is not a tuple type");
    }
    // Validate renames refer to existing attributes of this supertype.
    for (const Rename& r : renames[si]) {
      if (super->AttributeIndex(r.old_name) < 0) {
        return Status::TypeError("rename of unknown attribute '" +
                                 r.old_name + "' inherited from '" +
                                 super->name() + "'");
      }
    }
    for (const Attribute& a : super->attributes()) {
      Attribute inherited = a;
      inherited.inherited_from = super->name();
      // The origin is the deepest ancestor that declared the attribute.
      std::string origin =
          (a.inherited_from.empty() ? super->name() : a.inherited_from) + "." +
          (a.renamed_from.empty() ? a.name : a.renamed_from);
      for (const Rename& r : renames[si]) {
        if (r.old_name == a.name) {
          inherited.renamed_from = a.name;
          inherited.name = r.new_name;
          break;
        }
      }
      auto it = origin_of.find(inherited.name);
      if (it != origin_of.end()) {
        if (it->second == origin) continue;  // benign diamond; keep one copy
        return Status::TypeError(
            "inheritance conflict in type '" + t->name_ + "': attribute '" +
            inherited.name + "' is inherited from multiple supertypes; "
            "resolve it with an explicit rename (with (... renamed ...))");
      }
      origin_of[inherited.name] = origin;
      resolved.push_back(std::move(inherited));
    }
  }
  for (const Attribute& a : t->own_attrs_) {
    if (origin_of.count(a.name)) {
      return Status::TypeError("attribute '" + a.name + "' of type '" +
                               t->name_ +
                               "' clashes with an inherited attribute");
    }
    // Local duplicates.
    for (const Attribute& b : t->own_attrs_) {
      if (&a != &b && a.name == b.name) {
        return Status::TypeError("duplicate attribute '" + a.name +
                                 "' in type '" + t->name_ + "'");
      }
    }
    origin_of[a.name] = t->name_ + "." + a.name;
    resolved.push_back(a);
  }
  t->resolved_attrs_ = std::move(resolved);
  for (size_t i = 0; i < t->resolved_attrs_.size(); ++i) {
    t->attr_index_[t->resolved_attrs_[i].name] = static_cast<int>(i);
  }
  // Reject infinite (own-embedding) recursion.
  for (const Attribute& a : t->resolved_attrs_) {
    if (EmbedsOwn(a.type, t)) {
      return Status::TypeError(
          "type '" + t->name_ + "' embeds itself by value through attribute '" +
          a.name + "'; use 'ref' or 'own ref' to break the cycle");
    }
  }
  return Status::OK();
}

bool AssignableTo(const Type* from, const Type* to) {
  if (from == to) return true;
  if (from == nullptr || to == nullptr) return false;
  if (from->is_numeric() && to->is_numeric()) return true;
  if (from->is_string() && to->is_string()) return true;
  if (from->is_tuple() && to->is_tuple()) return from->IsSubtypeOf(to);
  if (from->is_ref() && to->is_ref()) {
    return from->target()->IsSubtypeOf(to->target());
  }
  if (from->is_set() && to->is_set()) {
    return AssignableTo(from->element_type(), to->element_type());
  }
  if (from->is_array() && to->is_array()) {
    return AssignableTo(from->element_type(), to->element_type()) &&
           (to->array_size() == 0 || to->array_size() == from->array_size());
  }
  if (from->kind() == TypeKind::kEnum && to->kind() == TypeKind::kEnum) {
    return from == to;
  }
  if (from->kind() == TypeKind::kAdt && to->kind() == TypeKind::kAdt) {
    return from->adt_id() == to->adt_id();
  }
  return false;
}

}  // namespace exodus::extra

#ifndef EXODUS_EXTRA_TYPE_H_
#define EXODUS_EXTRA_TYPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace exodus::extra {

/// Kinds of EXTRA types.
///
/// Base types (paper §2.1): integers of various sizes, single/double
/// precision floats, booleans, character strings, enumerations, plus
/// ADT-defined base types. Constructors: tuple, set, fixed-length array,
/// variable-length array, and references.
enum class TypeKind {
  kInt2,
  kInt4,
  kInt8,
  kFloat4,
  kFloat8,
  kBool,
  kChar,     // fixed-length character string char[n]
  kText,     // variable-length character string
  kEnum,     // enumeration type (named, catalog-registered)
  kAdt,      // abstract data type (registered in adt::Registry)
  kTuple,    // schema (tuple) type, possibly with supertypes
  kSet,      // {T}
  kArray,    // [n] T (fixed, size > 0) or [*] T (variable, size == 0)
  kRef,      // reference to a tuple type: `ref T` or `own ref T`
};

/// The three attribute-value semantics of EXTRA (paper §2.2):
///  - kOwn     — a value embedded in its parent; no object identity.
///  - kRef     — a reference to an independent object (GEM-style).
///  - kOwnRef  — a reference to an *owned* component object: it has
///               identity and may be referenced from elsewhere, but is
///               owned by exactly one parent and is cascade-deleted
///               with it (ORION composite objects / E-R weak entities).
///
/// In the type graph, `own T` is represented by T itself; `ref T` and
/// `own ref T` are represented by a kRef node whose `owned()` flag
/// distinguishes the two.
enum class Ownership { kOwn, kRef, kOwnRef };

class Type;

/// An attribute of a tuple type.
struct Attribute {
  std::string name;
  const Type* type = nullptr;
  /// Name of the supertype this attribute was inherited from; empty for
  /// locally declared attributes.
  std::string inherited_from;
  /// Original name in the supertype if the attribute was renamed during
  /// inheritance (paper Figure 3); empty otherwise.
  std::string renamed_from;
};

/// A rename directive in an `inherits ... with (a renamed b)` clause.
struct Rename {
  std::string old_name;
  std::string new_name;
};

/// An immutable EXTRA type node. Instances are created and owned by a
/// `TypeStore`; identity (pointer) comparison is valid within one store.
class Type {
 public:
  TypeKind kind() const { return kind_; }

  bool is_numeric() const {
    return kind_ == TypeKind::kInt2 || kind_ == TypeKind::kInt4 ||
           kind_ == TypeKind::kInt8 || kind_ == TypeKind::kFloat4 ||
           kind_ == TypeKind::kFloat8;
  }
  bool is_integer() const {
    return kind_ == TypeKind::kInt2 || kind_ == TypeKind::kInt4 ||
           kind_ == TypeKind::kInt8;
  }
  bool is_float() const {
    return kind_ == TypeKind::kFloat4 || kind_ == TypeKind::kFloat8;
  }
  bool is_string() const {
    return kind_ == TypeKind::kChar || kind_ == TypeKind::kText;
  }
  bool is_tuple() const { return kind_ == TypeKind::kTuple; }
  bool is_set() const { return kind_ == TypeKind::kSet; }
  bool is_array() const { return kind_ == TypeKind::kArray; }
  bool is_ref() const { return kind_ == TypeKind::kRef; }
  bool is_collection() const { return is_set() || is_array(); }

  /// Name of a named type (tuple, enum) or ADT; empty for structural and
  /// plain base types.
  const std::string& name() const { return name_; }

  // --- kChar ---
  /// Declared length of a char[n] string; 0 for kText.
  size_t char_length() const { return char_length_; }

  // --- kEnum ---
  const std::vector<std::string>& enum_labels() const { return enum_labels_; }
  /// Returns the ordinal of `label` or an error.
  util::Result<int> EnumOrdinal(const std::string& label) const;

  // --- kAdt ---
  int adt_id() const { return adt_id_; }

  // --- kTuple ---
  /// Attributes declared directly on this type.
  const std::vector<Attribute>& own_attributes() const { return own_attrs_; }
  /// All attributes: inherited (in supertype declaration order, renames
  /// applied) followed by local ones.
  const std::vector<Attribute>& attributes() const { return resolved_attrs_; }
  /// Direct supertypes.
  const std::vector<const Type*>& supertypes() const { return supertypes_; }
  /// Renames applied per direct supertype (same indexing as supertypes()).
  const std::vector<std::vector<Rename>>& renames() const { return renames_; }
  /// Index of attribute `name` in attributes(), or -1.
  int AttributeIndex(const std::string& name) const;
  /// The attribute named `name`, or NotFound.
  util::Result<const Attribute*> FindAttribute(const std::string& name) const;
  /// True if this tuple type equals `other` or transitively inherits it.
  bool IsSubtypeOf(const Type* other) const;

  // --- kSet / kArray ---
  const Type* element_type() const { return elem_; }
  /// Declared size of a fixed array; 0 for variable-length arrays.
  size_t array_size() const { return array_size_; }
  bool is_fixed_array() const {
    return kind_ == TypeKind::kArray && array_size_ > 0;
  }

  // --- kRef ---
  /// The referenced tuple type.
  const Type* target() const { return target_; }
  /// True for `own ref` (owned component), false for plain `ref`.
  bool owned() const { return owned_; }

  /// The ownership semantics of a component of this type: kOwn unless this
  /// is a kRef node.
  Ownership ownership() const {
    if (kind_ != TypeKind::kRef) return Ownership::kOwn;
    return owned_ ? Ownership::kOwnRef : Ownership::kRef;
  }

  /// Human-readable type description, e.g. "{own ref Person}".
  std::string ToString() const;

  Type(const Type&) = delete;
  Type& operator=(const Type&) = delete;

 private:
  friend class TypeStore;
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::string name_;
  size_t char_length_ = 0;
  std::vector<std::string> enum_labels_;
  int adt_id_ = -1;
  std::vector<Attribute> own_attrs_;
  std::vector<Attribute> resolved_attrs_;
  std::unordered_map<std::string, int> attr_index_;
  std::vector<const Type*> supertypes_;
  std::vector<std::vector<Rename>> renames_;
  const Type* elem_ = nullptr;
  size_t array_size_ = 0;
  const Type* target_ = nullptr;
  bool owned_ = false;
};

/// Owns every `Type` node of one database. Base-type singletons are
/// interned; structural types are deduplicated where cheap to do so.
class TypeStore {
 public:
  TypeStore();
  TypeStore(const TypeStore&) = delete;
  TypeStore& operator=(const TypeStore&) = delete;

  const Type* int2() const { return int2_; }
  const Type* int4() const { return int4_; }
  const Type* int8() const { return int8_; }
  const Type* float4() const { return float4_; }
  const Type* float8() const { return float8_; }
  const Type* boolean() const { return bool_; }
  const Type* text() const { return text_; }
  /// char[n]; n must be > 0.
  const Type* Char(size_t n);

  /// A named enumeration with the given labels.
  const Type* MakeEnum(std::string name, std::vector<std::string> labels);
  /// A base type implemented by a registered ADT.
  const Type* MakeAdt(std::string name, int adt_id);
  /// {elem}
  const Type* MakeSet(const Type* elem);
  /// [size] elem if size > 0, [*] elem if size == 0.
  const Type* MakeArray(const Type* elem, size_t size);
  /// `ref target` or `own ref target`; target must be a tuple type.
  const Type* MakeRef(const Type* target, bool owned);

  /// Creates a tuple type and resolves its inherited attribute set.
  /// Fails with TypeError on inheritance conflicts (same attribute name
  /// arriving from two distinct origins without a rename, paper Fig. 3),
  /// on renames of non-existent attributes, and on duplicate local names.
  util::Result<const Type*> MakeTuple(
      std::string name, std::vector<const Type*> supertypes,
      std::vector<std::vector<Rename>> renames,
      std::vector<Attribute> own_attrs);

  /// Two-phase tuple creation, allowing self-referential attribute types
  /// (`define type Person (... kids: {own ref Person})`): BeginTuple
  /// creates and returns the (attribute-less) type so attribute type
  /// expressions can reference it; FinishTuple installs the attributes
  /// and resolves inheritance. FinishTuple also rejects infinite types:
  /// a tuple may not (transitively) embed itself as an `own` value.
  util::Result<Type*> BeginTuple(std::string name,
                                 std::vector<const Type*> supertypes,
                                 std::vector<std::vector<Rename>> renames);
  util::Status FinishTuple(Type* tuple, std::vector<Attribute> own_attrs);

 private:
  const Type* Intern(std::unique_ptr<Type> t);

  std::vector<std::unique_ptr<Type>> pool_;
  const Type* int2_;
  const Type* int4_;
  const Type* int8_;
  const Type* float4_;
  const Type* float8_;
  const Type* bool_;
  const Type* text_;
  std::unordered_map<size_t, const Type*> char_types_;
};

/// True if a value of type `from` may be stored where `to` is expected:
/// exact match, numeric widening (any numeric → any numeric), char/text
/// interchange, tuple subtyping, and covariant ref targets.
bool AssignableTo(const Type* from, const Type* to);

}  // namespace exodus::extra

#endif  // EXODUS_EXTRA_TYPE_H_

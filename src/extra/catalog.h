#ifndef EXODUS_EXTRA_CATALOG_H_
#define EXODUS_EXTRA_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "extra/lattice.h"
#include "extra/type.h"
#include "object/mvcc.h"
#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::extra {

/// A named persistent object created with `create <Name> : <type>`
/// (paper §2.1: EXTRA separates type from instance — databases hold
/// user-created named sets, arrays, single objects and references, e.g.
/// `Employees`, `TopTen`, `StarEmployee`, `Today`).
///
/// The current value is a version chain (object::VersionedValue):
/// snapshot readers resolve it with ValueAt(epoch) lock-free, snapshot
/// writers publish a new version at commit, and exclusive contexts
/// (DDL, legacy-locked execution) read and mutate the newest version in
/// place via value() / mutable_value().
struct NamedObject {
  std::string name;
  /// Declared type, after top-level identity adjustment: collections of
  /// tuple type become collections of `own ref` to that type (elements
  /// of a top-level extent are objects with identity).
  const Type* type = nullptr;
  /// User who created the object (owner for authorization purposes).
  std::string creator;
  /// Key attributes (uniqueness over members; empty = no key). Only
  /// meaningful for sets of schema-type objects.
  std::vector<std::string> key_attrs;

  /// Newest (committed) value — exclusive contexts and planning.
  const object::Value& value() const { return cell.newest(); }
  /// In-place mutable newest value — exclusive contexts only.
  object::Value* mutable_value() { return cell.mutable_newest(); }
  /// Value visible at `epoch` (lock-free snapshot read).
  const object::Value& ValueAt(uint64_t epoch) const { return cell.At(epoch); }
  /// Pushes a new committed version (controller commit section only).
  void Publish(object::Value v, uint64_t epoch) {
    cell.Publish(std::move(v), epoch);
  }
  /// Collapses the chain to one version visible everywhere (DDL/load,
  /// under the exclusive lock with no snapshots pinned).
  void Reset(object::Value v) { cell.Reset(std::move(v)); }

  object::VersionedValue cell;
};

/// The schema catalog of one database: named types (tuple, enum, ADT),
/// the inheritance lattice, and named persistent objects.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  TypeStore* type_store() { return &types_; }
  const TypeLattice& lattice() const { return lattice_; }

  /// Registers a named type (the name must be unused). Tuple types are
  /// also entered into the lattice.
  util::Status RegisterType(const std::string& name, const Type* type);

  /// The type registered under `name`, or NotFound.
  util::Result<const Type*> FindType(const std::string& name) const;

  /// True if a type named `name` exists.
  bool HasType(const std::string& name) const {
    return named_types_.count(name) > 0;
  }

  /// Creates a named object of the given declared type with `initial`
  /// value. Fails if the name is in use (by a type or named object).
  util::Status CreateNamed(const std::string& name, const Type* type,
                           object::Value initial, const std::string& creator);

  /// Looks up a named object (mutable: queries update extents in place).
  NamedObject* FindNamed(const std::string& name);
  const NamedObject* FindNamed(const std::string& name) const;

  /// Removes a named object. The caller is responsible for destroying
  /// owned heap objects first.
  util::Status DropNamed(const std::string& name);

  /// All named objects, in name order (stable iteration for persistence
  /// and display).
  const std::map<std::string, NamedObject>& named_objects() const {
    return named_;
  }

  /// Mutable iteration for internal maintenance (the MVCC version-GC
  /// sweep prunes each named object's version chain in place).
  std::map<std::string, NamedObject>* mutable_named_objects() {
    return &named_;
  }

  /// All named types in definition order (for persistence).
  const std::vector<std::pair<std::string, const Type*>>& named_types_in_order()
      const {
    return type_order_;
  }

  /// Monotonic schema-generation counter. Every DDL-visible change
  /// (type registration, named-object create/drop, and — bumped by
  /// Database — index create/drop and function/procedure definition)
  /// increments it, so cached query plans can detect staleness. Atomic:
  /// sessions executing under a shared database lock read it while DDL
  /// (under the exclusive lock) bumps it.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  TypeStore types_;
  TypeLattice lattice_;
  std::map<std::string, const Type*> named_types_;
  std::vector<std::pair<std::string, const Type*>> type_order_;
  std::map<std::string, NamedObject> named_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace exodus::extra

#endif  // EXODUS_EXTRA_CATALOG_H_

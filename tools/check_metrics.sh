#!/usr/bin/env bash
# End-to-end metrics smoke check: start excess_server, run a handful of
# queries through excess_client, scrape \metrics twice, and assert the
# key series are present and monotone. Used by CI after the build; runs
# against ./build by default:
#
#   tools/check_metrics.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/excess_server"
CLIENT="$BUILD_DIR/src/excess_client"
PORT="${EXODUS_CHECK_PORT:-40877}"

[ -x "$SERVER" ] || { echo "missing $SERVER (build first)"; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build first)"; exit 1; }

"$SERVER" --port "$PORT" --workers 2 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listener.
for _ in $(seq 1 50); do
  if echo '\quit' | "$CLIENT" "127.0.0.1:$PORT" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

run_client() {
  "$CLIENT" "127.0.0.1:$PORT" 2>&1
}

# Series value from an exposition dump; labels are part of the name.
# Anchored at line start so `# TYPE name counter` headers never match.
metric() {
  local dump="$1" name="$2"
  printf '%s\n' "$dump" |
    awk -v n="$name " 'index($0, n) == 1 { print $NF; found = 1; exit }
                       END { if (!found) print "MISSING" }'
}

echo "--- loading workload"
run_client <<'EOF' >/dev/null
define type Employee (name: char[25], dept_id: int4);
create Employees : {Employee};
append to Employees (name = "ann", dept_id = 1);
append to Employees (name = "bob", dept_id = 2);
retrieve (E.name) from E in Employees;
EOF

SCRAPE1=$(printf '\\metrics\n' | run_client | grep -E '^(#|exodus_)')

echo "--- second query batch"
run_client <<'EOF' >/dev/null
retrieve (E.name) from E in Employees where E.dept_id = 1;
retrieve (E.name) from E in Employees;
EOF

SCRAPE2=$(printf '\\metrics\n' | run_client | grep -E '^(#|exodus_)')

fail=0
check_present() {
  local name="$1"
  if ! printf '%s\n' "$SCRAPE2" | grep -qF "$name"; then
    echo "FAIL: series '$name' missing from exposition"
    fail=1
  else
    echo "ok: $name present"
  fi
}
check_monotone() {
  local name="$1"
  local v1 v2
  v1=$(metric "$SCRAPE1" "$name")
  v2=$(metric "$SCRAPE2" "$name")
  if [ "$v1" = "MISSING" ] || [ "$v2" = "MISSING" ]; then
    echo "FAIL: cannot read '$name' ($v1 -> $v2)"
    fail=1
  elif [ "$v2" -lt "$v1" ]; then
    echo "FAIL: '$name' went backwards ($v1 -> $v2)"
    fail=1
  else
    echo "ok: $name monotone ($v1 -> $v2)"
  fi
}
check_increased() {
  local name="$1"
  local v1 v2
  v1=$(metric "$SCRAPE1" "$name")
  v2=$(metric "$SCRAPE2" "$name")
  if [ "$v1" = "MISSING" ] || [ "$v2" = "MISSING" ] || [ "$v2" -le "$v1" ]; then
    echo "FAIL: '$name' did not increase ($v1 -> $v2)"
    fail=1
  else
    echo "ok: $name increased ($v1 -> $v2)"
  fi
}

# Every metric family must be registered exactly once: a duplicate
# `# TYPE` header means two call sites registered the same series and
# Prometheus will reject the scrape.
DUPES=$(printf '%s\n' "$SCRAPE2" | grep '^# TYPE ' | sort | uniq -d)
if [ -n "$DUPES" ]; then
  echo "FAIL: duplicate # TYPE families in exposition:"
  printf '%s\n' "$DUPES"
  fail=1
else
  echo "ok: no duplicate # TYPE families"
fi

check_present 'exodus_server_connections_total'
check_present 'exodus_server_latency_us_count'
check_present 'exodus_plan_cache_misses_total'
check_present 'exodus_buffer_pool_hits_total'
check_present 'exodus_operator_rows_total{op="hash_join"}'
check_present 'exodus_statement_latency_us_bucket'
# Wait-event profile: every class is registered up front, and the
# connection-thread events must actually move under wire traffic.
for ev in mvcc_writer_latch mvcc_exclusive_lock wal_fsync wal_group_commit \
          thread_pool_queue server_send client_read; do
  check_present "exodus_wait_events_total{event=\"$ev\"}"
  check_present "exodus_wait_time_us_count{event=\"$ev\"}"
done
check_increased 'exodus_wait_events_total{event="client_read"}'
check_increased 'exodus_wait_events_total{event="server_send"}'

check_monotone 'exodus_server_errors_total'
check_monotone 'exodus_statement_errors_total'
check_increased 'exodus_server_queries_total'
check_increased 'exodus_statements_total'
check_increased 'exodus_operator_rows_total{op="scan"}'
check_increased 'exodus_server_connections_total'

if [ "$fail" -ne 0 ]; then
  echo "metrics check FAILED"
  exit 1
fi
echo "metrics check passed"

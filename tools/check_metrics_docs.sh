#!/usr/bin/env bash
# Metrics documentation lint: every metric family the engine registers
# must be documented in docs/observability.md. Scrapes a live server
# (which registers the full set: engine + server + wait-event series),
# extracts the family names from the `# TYPE` headers, and fails if any
# is missing from the docs. Used by CI after the build:
#
#   tools/check_metrics_docs.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/src/excess_server"
CLIENT="$BUILD_DIR/src/excess_client"
DOCS="docs/observability.md"
PORT="${EXODUS_CHECK_PORT:-40879}"

[ -x "$SERVER" ] || { echo "missing $SERVER (build first)"; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build first)"; exit 1; }
[ -f "$DOCS" ] || { echo "missing $DOCS"; exit 1; }

"$SERVER" --port "$PORT" --workers 2 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if echo '\quit' | "$CLIENT" "127.0.0.1:$PORT" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

# One statement so lazily-registered operator series show up too.
"$CLIENT" "127.0.0.1:$PORT" >/dev/null 2>&1 <<'EOF'
retrieve (1 + 1);
EOF

FAMILIES=$(printf '\\metrics\n' | "$CLIENT" "127.0.0.1:$PORT" 2>&1 |
  awk '/^# TYPE exodus_/ { print $3 }' | sort -u)

if [ -z "$FAMILIES" ]; then
  echo "FAIL: no exodus_* families scraped (server broken?)"
  exit 1
fi

fail=0
for fam in $FAMILIES; do
  if grep -qF "$fam" "$DOCS"; then
    echo "ok: $fam documented"
  else
    echo "FAIL: family '$fam' is registered but not mentioned in $DOCS"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "metrics docs check FAILED"
  exit 1
fi
echo "metrics docs check passed ($(printf '%s\n' "$FAMILIES" | wc -l) families)"

// An interactive EXCESS shell: type statements, see results. Supports
// multi-line input (statements end at a blank line or ';'), plus a few
// shell commands:
//
//   \plan              show the plan of the last retrieve/update
//   \schema            list types and named objects
//   \save <file>       checkpoint the database
//   \load <file>       replace the session with a saved database
//   \quit
//
// Run:  ./build/examples/exodus_shell
//       echo 'retrieve (Complex(1.0,2.0) + Complex(3.0,4.0))' | \
//           ./build/examples/exodus_shell

#include <iostream>
#include <memory>
#include <string>

#include "excess/database.h"
#include "util/string_util.h"

namespace {

void PrintSchema(exodus::Database& db) {
  std::cout << "types:\n";
  for (const auto& [name, type] : db.catalog()->named_types_in_order()) {
    std::cout << "  " << name;
    if (type->is_tuple()) {
      std::cout << " (";
      const auto& attrs = type->attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << attrs[i].name << ": " << attrs[i].type->ToString();
      }
      std::cout << ")";
      if (!type->supertypes().empty()) {
        std::cout << " inherits";
        for (const auto* s : type->supertypes()) std::cout << " " << s->name();
      }
    }
    std::cout << "\n";
  }
  std::cout << "named objects:\n";
  for (const auto& [name, obj] : db.catalog()->named_objects()) {
    std::cout << "  " << name << " : " << obj.type->ToString()
              << "  (creator " << obj.creator << ")\n";
  }
  std::cout << "live objects: " << db.heap()->live_count() << "\n";
}

}  // namespace

int main() {
  auto db = std::make_unique<exodus::Database>();
  bool interactive = true;

  std::cout << "EXTRA/EXCESS shell — EXODUS data model & query language\n"
               "end statements with ';' or a blank line; \\quit to exit\n";

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::cout << (buffer.empty() ? "excess> " : "   ...> ") << std::flush;
    }
    if (!std::getline(std::cin, line)) {
      // EOF: execute whatever is buffered (piped input without ';').
      if (!exodus::util::Trim(buffer).empty()) {
        auto results = db->ExecuteAll(buffer);
        if (!results.ok()) {
          std::cout << results.status().ToString() << "\n";
        } else {
          for (const auto& r : *results) std::cout << db->Format(r);
        }
      }
      break;
    }

    std::string trimmed(exodus::util::Trim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\plan") {
        std::cout << db->last_plan();
        continue;
      }
      if (trimmed == "\\schema") {
        PrintSchema(*db);
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\save ")) {
        auto st = db->Save(trimmed.substr(6));
        std::cout << st.ToString() << "\n";
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\load ")) {
        auto loaded = exodus::Database::Load(trimmed.substr(6));
        if (loaded.ok()) {
          db = std::move(*loaded);
          std::cout << "loaded\n";
        } else {
          std::cout << loaded.status().ToString() << "\n";
        }
        continue;
      }
      std::cout << "unknown shell command: " << trimmed << "\n";
      continue;
    }

    buffer += line;
    buffer += "\n";
    bool complete = trimmed.empty() ||
                    (!trimmed.empty() && trimmed.back() == ';');
    if (!complete || exodus::util::Trim(buffer).empty()) {
      if (trimmed.empty()) buffer.clear();
      continue;
    }

    auto results = db->ExecuteAll(buffer);
    buffer.clear();
    if (!results.ok()) {
      std::cout << results.status().ToString() << "\n";
      continue;
    }
    for (const auto& r : *results) {
      std::cout << db->Format(r);
    }
  }
  return 0;
}

// An interactive EXCESS shell: type statements, see results. Built on
// the Session embedding API — one session per shell process. Supports
// multi-line input (statements end at a blank line or ';'), plus a few
// shell commands:
//
//   \plan              show the plan of the last retrieve/update
//   \explain <stmt>    plan a statement without executing it
//   \explain analyze <stmt>
//                      execute it and annotate each plan step with its
//                      runtime actuals (rows, invocations, time)
//   \schema            list types and named objects
//   \cache             show plan-cache statistics
//   \metrics           Prometheus text exposition (local or remote)
//   \activity          live per-session activity (local or remote)
//   \waits             cumulative wait-event counters (local or remote)
//   \slowlog [N]       show the slow-query log / set its threshold (us)
//   \prepare <stmt>    prepare a statement with $n parameters
//   \exec <v1> <v2>..  bind + execute the prepared statement
//   \save <file>       checkpoint the database
//   \load <file>       replace the session with a saved database
//   \connect h:p [usr] switch to a remote excess_server
//   \disconnect        return to the local in-process database
//   \stats             server counters (remote mode)
//   \quit
//
// In remote mode statements run over the wire through the blocking
// client library; EOF (ctrl-D) exits 0, a lost server connection
// prints a clean message and exits 1.
//
// Run:  ./build/examples/exodus_shell
//       echo 'retrieve (Complex(1.0,2.0) + Complex(3.0,4.0))' | \
//           ./build/examples/exodus_shell

#include <cctype>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "server/client.h"
#include "util/string_util.h"

namespace {

void PrintSchema(exodus::Database& db) {
  std::cout << "types:\n";
  for (const auto& [name, type] : db.catalog()->named_types_in_order()) {
    std::cout << "  " << name;
    if (type->is_tuple()) {
      std::cout << " (";
      const auto& attrs = type->attributes();
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << attrs[i].name << ": " << attrs[i].type->ToString();
      }
      std::cout << ")";
      if (!type->supertypes().empty()) {
        std::cout << " inherits";
        for (const auto* s : type->supertypes()) std::cout << " " << s->name();
      }
    }
    std::cout << "\n";
  }
  std::cout << "named objects:\n";
  for (const auto& [name, obj] : db.catalog()->named_objects()) {
    std::cout << "  " << name << " : " << obj.type->ToString()
              << "  (creator " << obj.creator << ")\n";
  }
  std::cout << "live objects: " << db.heap()->live_count() << "\n";
}

void PrintCacheStats(exodus::Database& db) {
  auto s = db.CacheStats();
  std::cout << "plan cache: " << db.plan_cache()->size() << "/"
            << db.plan_cache()->capacity() << " entries, " << s.hits
            << " hit(s), " << s.misses << " miss(es), " << s.invalidations
            << " invalidation(s), " << s.evictions << " eviction(s)\n";
}

/// Parses one whitespace-separated `\exec` argument into a Value:
/// int, float, true/false, else string (quotes optional).
exodus::object::Value ParseArg(const std::string& raw) {
  using exodus::object::Value;
  if (raw == "true") return Value::Bool(true);
  if (raw == "false") return Value::Bool(false);
  if (raw.size() >= 2 && raw.front() == '"' && raw.back() == '"') {
    return Value::String(raw.substr(1, raw.size() - 2));
  }
  try {
    size_t used = 0;
    long long i = std::stoll(raw, &used);
    if (used == raw.size()) return Value::Int(i);
    double d = std::stod(raw, &used);
    if (used == raw.size()) return Value::Float(d);
  } catch (...) {
  }
  return Value::String(raw);
}

}  // namespace

int main() {
  auto db = std::make_unique<exodus::Database>();
  auto session_or = db->CreateSession();
  if (!session_or.ok()) {
    std::cerr << session_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<exodus::Session> session = std::move(*session_or);
  std::unique_ptr<exodus::PreparedStatement> prepared;
  // Non-null while `\connect`ed to a remote excess_server; statements
  // then run over the wire instead of on the local database.
  std::unique_ptr<exodus::server::Client> remote;
  bool interactive = true;

  // Runs one statement buffer remotely. Returns false when the server
  // connection is gone (the shell then exits 1).
  auto run_remote = [&](const std::string& text) {
    auto rows = remote->Query(text);
    if (!rows.ok()) {
      std::cout << rows.status().ToString() << "\n";
      if (!remote->connected()) {
        std::cout << "connection to server lost\n";
        return false;
      }
      return true;
    }
    std::cout << rows->ToString();
    return true;
  };

  std::cout << "EXTRA/EXCESS shell — EXODUS data model & query language\n"
               "end statements with ';' or a blank line; \\quit to exit\n";

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::cout << (buffer.empty() ? "excess> " : "   ...> ") << std::flush;
    }
    if (!std::getline(std::cin, line)) {
      // EOF (ctrl-D): execute whatever is buffered (piped input
      // without ';'), then exit cleanly.
      if (!exodus::util::Trim(buffer).empty()) {
        if (remote != nullptr) {
          if (!run_remote(buffer)) return 1;
        } else {
          auto results = session->ExecuteAll(buffer);
          if (!results.ok()) {
            std::cout << results.status().ToString() << "\n";
          } else {
            for (const auto& r : *results) std::cout << db->Format(r);
          }
        }
      }
      if (interactive) std::cout << "\n";
      break;
    }

    std::string trimmed(exodus::util::Trim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (exodus::util::StartsWith(trimmed, "\\connect ")) {
        // \connect host:port [user]
        std::string rest(exodus::util::Trim(trimmed.substr(9)));
        std::string user = "dba";
        size_t space = rest.find(' ');
        if (space != std::string::npos) {
          user = std::string(exodus::util::Trim(rest.substr(space + 1)));
          rest = rest.substr(0, space);
        }
        std::string host;
        uint16_t port = 0;
        auto st = exodus::server::ParseHostPort(rest, &host, &port);
        if (!st.ok()) {
          std::cout << st.ToString() << "\n";
          continue;
        }
        auto connected = exodus::server::Client::Connect(host, port, user);
        if (!connected.ok()) {
          std::cout << connected.status().ToString() << "\n";
          continue;
        }
        remote = std::move(*connected);
        std::cout << "connected to " << host << ":" << port << " as "
                  << user << " (\\disconnect to go local)\n";
        continue;
      }
      if (trimmed == "\\disconnect") {
        if (remote == nullptr) {
          std::cout << "not connected\n";
        } else {
          remote.reset();
          std::cout << "disconnected — back to local database\n";
        }
        continue;
      }
      if (trimmed == "\\stats") {
        if (remote == nullptr) {
          std::cout << "not connected — \\stats reports server counters\n";
          continue;
        }
        auto stats = remote->Stats();
        if (!stats.ok()) {
          std::cout << stats.status().ToString() << "\n";
          if (!remote->connected()) {
            std::cout << "connection to server lost\n";
            return 1;
          }
          continue;
        }
        std::cout << stats->ToString();
        continue;
      }
      if (trimmed == "\\plan") {
        std::cout << db->last_plan();
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\explain ")) {
        // One code path for both modes (Session::Explain), so plain
        // \explain reports parse-error positions exactly like \exec.
        std::string rest(exodus::util::Trim(trimmed.substr(9)));
        bool analyze = false;
        if (exodus::util::StartsWith(rest, "analyze ")) {
          analyze = true;
          rest = std::string(exodus::util::Trim(rest.substr(8)));
        }
        auto text = session->Explain(rest, analyze);
        if (!text.ok()) {
          std::cout << text.status().ToString() << "\n";
        } else {
          std::cout << *text;
        }
        continue;
      }
      if (trimmed == "\\metrics") {
        if (remote != nullptr) {
          auto text = remote->Metrics();
          if (!text.ok()) {
            std::cout << text.status().ToString() << "\n";
            if (!remote->connected()) {
              std::cout << "connection to server lost\n";
              return 1;
            }
          } else {
            std::cout << *text;
          }
        } else {
          std::cout << db->metrics()->RenderPrometheus();
        }
        continue;
      }
      if (trimmed == "\\activity") {
        if (remote != nullptr) {
          auto activity = remote->Activity();
          if (!activity.ok()) {
            std::cout << activity.status().ToString() << "\n";
            if (!remote->connected()) {
              std::cout << "connection to server lost\n";
              return 1;
            }
          } else {
            std::cout << activity->ToString();
          }
        } else {
          auto records = db->sessions()->Snapshot();
          if (records.empty()) {
            std::cout << "no sessions\n";
          } else {
            for (const auto& rec : records) std::cout << rec.ToString();
          }
        }
        continue;
      }
      if (trimmed == "\\waits") {
        // Wait-event counters live in the metrics registry; show just
        // the exodus_wait_* series from the exposition.
        std::string exposition;
        if (remote != nullptr) {
          auto text = remote->Metrics();
          if (!text.ok()) {
            std::cout << text.status().ToString() << "\n";
            if (!remote->connected()) {
              std::cout << "connection to server lost\n";
              return 1;
            }
            continue;
          }
          exposition = std::move(*text);
        } else {
          exposition = db->metrics()->RenderPrometheus();
        }
        std::istringstream in(exposition);
        std::string mline;
        while (std::getline(in, mline)) {
          if (mline.find("exodus_wait_") != std::string::npos) {
            std::cout << mline << "\n";
          }
        }
        continue;
      }
      if (trimmed == "\\slowlog" ||
          exodus::util::StartsWith(trimmed, "\\slowlog ")) {
        if (remote != nullptr) {
          std::cout << "\\slowlog inspects the local database only\n";
          continue;
        }
        if (trimmed != "\\slowlog") {
          std::string arg(exodus::util::Trim(trimmed.substr(9)));
          try {
            db->SetSlowQueryThresholdMicros(std::stoll(arg));
            std::cout << "slow-query threshold set to " << arg << " us\n";
          } catch (...) {
            std::cout << "usage: \\slowlog [threshold-micros]\n";
          }
          continue;
        }
        auto records = db->SlowQueries();
        if (records.empty()) {
          std::cout << "slow-query log is empty (set a threshold with "
                       "\\slowlog <micros>)\n";
        } else {
          for (const auto& rec : records) std::cout << rec.ToString() << "\n";
        }
        continue;
      }
      if (trimmed == "\\schema") {
        PrintSchema(*db);
        continue;
      }
      if (trimmed == "\\cache") {
        PrintCacheStats(*db);
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\prepare ")) {
        auto stmt = session->Prepare(trimmed.substr(9));
        if (!stmt.ok()) {
          std::cout << stmt.status().ToString() << "\n";
        } else {
          prepared = std::move(*stmt);
          std::cout << "prepared (" << prepared->param_count()
                    << " parameter(s))\n";
        }
        continue;
      }
      if (trimmed == "\\exec" ||
          exodus::util::StartsWith(trimmed, "\\exec ")) {
        if (prepared == nullptr) {
          std::cout << "nothing prepared — use \\prepare <stmt> first\n";
          continue;
        }
        // Split the rest into arguments and bind $1..$n.
        std::vector<std::string> args;
        std::string word;
        for (char c : trimmed.substr(5)) {
          if (std::isspace(static_cast<unsigned char>(c))) {
            if (!word.empty()) args.push_back(std::move(word));
            word.clear();
          } else {
            word += c;
          }
        }
        if (!word.empty()) args.push_back(std::move(word));
        bool bound = true;
        for (size_t i = 0; i < args.size(); ++i) {
          auto st = prepared->Bind(static_cast<int>(i + 1), ParseArg(args[i]));
          if (!st.ok()) {
            std::cout << st.ToString() << "\n";
            bound = false;
            break;
          }
        }
        if (!bound) continue;
        auto r = prepared->Execute();
        if (!r.ok()) {
          std::cout << r.status().ToString() << "\n";
        } else {
          std::cout << db->Format(*r);
        }
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\save ")) {
        auto st = db->Save(trimmed.substr(6));
        std::cout << st.ToString() << "\n";
        continue;
      }
      if (exodus::util::StartsWith(trimmed, "\\load ")) {
        auto loaded = exodus::Database::Load(trimmed.substr(6));
        if (loaded.ok()) {
          prepared.reset();
          session.reset();
          db = std::move(*loaded);
          auto fresh = db->CreateSession();
          if (!fresh.ok()) {
            std::cerr << fresh.status().ToString() << "\n";
            return 1;
          }
          session = std::move(*fresh);
          std::cout << "loaded\n";
        } else {
          std::cout << loaded.status().ToString() << "\n";
        }
        continue;
      }
      std::cout << "unknown shell command: " << trimmed << "\n";
      continue;
    }

    buffer += line;
    buffer += "\n";
    bool complete = trimmed.empty() ||
                    (!trimmed.empty() && trimmed.back() == ';');
    if (!complete || exodus::util::Trim(buffer).empty()) {
      if (trimmed.empty()) buffer.clear();
      continue;
    }

    if (remote != nullptr) {
      std::string text = std::move(buffer);
      buffer.clear();
      if (!run_remote(text)) return 1;
      continue;
    }

    auto results = session->ExecuteAll(buffer);
    buffer.clear();
    if (!results.ok()) {
      std::cout << results.status().ToString() << "\n";
      continue;
    }
    for (const auto& r : *results) {
      std::cout << db->Format(r);
    }
  }
  return 0;
}

// A business-database scenario: a company schema with enumerations,
// functions and procedures for derived data and encapsulated updates,
// authorization with user groups, secondary indexes, and persistence
// through the storage manager.
//
// Build & run:  ./build/examples/company

#include <cstdio>
#include <iostream>

#include "excess/database.h"

namespace {

int g_failures = 0;

void Run(exodus::Database& db, const std::string& query,
         bool expect_error = false) {
  std::cout << "EXCESS> " << query << "\n";
  auto result = db.Execute(query);
  if (!result.ok()) {
    std::cout << (expect_error ? "denied (as intended): " : "error: ")
              << result.status().ToString() << "\n\n";
    if (!expect_error) ++g_failures;
    return;
  }
  if (expect_error) ++g_failures;
  std::cout << db.Format(*result) << "\n";
}

}  // namespace

int main() {
  exodus::Database db;

  // --- Schema -------------------------------------------------------------
  Run(db, R"(
    define enum Grade (junior, senior, principal)
    define type Department (name: char[20], floor: int4, budget: float8)
    define type Employee (
      name: char[25],
      grade: Grade,
      salary: float8,
      hired: Date,
      dept: ref Department,
      reviews: [*] float8
    )
    create Departments : {Department}
    create Employees : {Employee}
  )");

  // --- Load ---------------------------------------------------------------
  Run(db, R"(append to Departments (name = "Research", floor = 3,
                                    budget = 900000.0))");
  Run(db, R"(append to Departments (name = "Sales", floor = 1,
                                    budget = 400000.0))");
  const char* staff[][4] = {
      {"ann", "principal", "98000.0", "Date(\"4/1/1979\")"},
      {"bob", "senior", "72000.0", "Date(\"9/15/1982\")"},
      {"cho", "junior", "51000.0", "Date(\"1/20/1986\")"},
      {"dee", "senior", "69000.0", "Date(\"6/30/1981\")"},
  };
  const char* dept[] = {"Research", "Sales", "Sales", "Research"};
  for (int i = 0; i < 4; ++i) {
    Run(db, std::string("append to Employees (name = \"") + staff[i][0] +
                "\", grade = " + staff[i][1] + ", salary = " + staff[i][2] +
                ", hired = " + staff[i][3] +
                ", dept = D) from D in Departments where D.name = \"" +
                dept[i] + "\"");
  }
  Run(db, R"(append to E.reviews (4.5) from E in Employees
             where E.name = "cho")");
  Run(db, R"(append to E.reviews (3.9) from E in Employees
             where E.name = "cho")");

  // --- Reporting ----------------------------------------------------------
  Run(db, R"(retrieve (E.name, E.grade, E.salary) from E in Employees
             sort by -E.salary)");
  Run(db, R"(retrieve unique (E.dept.name, count(E over E.dept),
                              avg(E.salary over E.dept))
             from E in Employees)");
  Run(db, R"(retrieve (E.name) from E in Employees
             where E.hired < Date("1/1/1982"))");
  Run(db, R"(retrieve (median(E.salary)) from E in Employees)");

  // --- Derived data through EXCESS functions -------------------------------
  Run(db, R"(define function Seniority (E: Employee) returns int4 as
             retrieve ((Date("7/6/1988") - E.hired) / 365))");
  Run(db, R"(define function AvgReview (E: Employee) returns float8 as
             retrieve (avg(E.reviews)))");
  Run(db, "retrieve (E.name, E.Seniority, E.AvgReview) from E in Employees "
          "sort by E.name");

  // --- Encapsulated updates: stored-command procedures ---------------------
  Run(db, R"(define procedure AnnualRaise (E: Employee, pct: float8) as
             replace E (salary = E.salary * (1.0 + pct)))");
  Run(db, R"(execute AnnualRaise(E, 0.05) from E in Employees
             where E.grade = senior)");
  Run(db, "retrieve (E.name, E.salary) from E in Employees sort by E.name");

  // --- Access methods -------------------------------------------------------
  Run(db, "create index SalIdx on Employees (salary) using btree");
  Run(db, "retrieve (E.name) from E in Employees where E.salary > 90000.0");
  std::cout << "-- plan --\n" << db.last_plan() << "\n";

  // --- Authorization: data abstraction (paper 4.2.3) -----------------------
  Run(db, "create user hrbot");
  Run(db, R"(define function Payroll (x: int4) returns float8 as
             retrieve (sum(E.salary)) from E in Employees)");
  Run(db, "grant execute on Payroll to hrbot");
  Run(db, "set user hrbot");
  Run(db, "retrieve (E.salary) from E in Employees", /*expect_error=*/true);
  Run(db, "retrieve (Payroll(0))");  // definer rights make this work
  Run(db, "set user dba");

  // --- Persistence -----------------------------------------------------------
  const std::string path = "/tmp/exodus_company_example.db";
  auto save = db.Save(path);
  std::cout << "save: " << save.ToString() << "\n";
  auto loaded = exodus::Database::Load(path);
  if (loaded.ok()) {
    Run(**loaded, "retrieve (count(E), sum(E.salary)) from E in Employees");
  } else {
    std::cout << "load error: " << loaded.status().ToString() << "\n";
    ++g_failures;
  }
  std::remove(path.c_str());

  if (g_failures > 0) {
    std::cout << g_failures << " step(s) misbehaved\n";
    return 1;
  }
  std::cout << "company example completed\n";
  return 0;
}

// A university database exercising the EXTRA type lattice: multiple
// inheritance with explicit conflict resolution by renaming (paper
// Figure 3), substitutability of subtype objects in supertype extents,
// and late- vs early-bound EXCESS functions along the lattice.
//
// Build & run:  ./build/examples/university

#include <iostream>

#include "excess/database.h"

namespace {

int g_failures = 0;

void Run(exodus::Database& db, const std::string& query,
         bool expect_error = false) {
  std::cout << "EXCESS> " << query << "\n";
  auto result = db.Execute(query);
  if (!result.ok()) {
    std::cout << (expect_error ? "rejected (as intended): " : "error: ")
              << result.status().ToString() << "\n\n";
    if (!expect_error) ++g_failures;
    return;
  }
  if (expect_error) ++g_failures;
  std::cout << db.Format(*result) << "\n";
}

}  // namespace

int main() {
  exodus::Database db;

  Run(db, R"(
    define type Department (name: char[25], building: char[25])
    define type Person (name: char[25], birthday: Date)
    define type Student inherits Person (
      dept: ref Department,
      gpa: float8
    )
    define type Employee inherits Person (
      dept: ref Department,
      salary: float8
    )
  )");

  // Figure 3: Student and Employee both contribute `dept` — a conflict
  // EXTRA refuses to resolve automatically...
  Run(db, "define type StudentEmployee inherits Student, Employee ()",
      /*expect_error=*/true);
  // ...and resolves with an explicit rename.
  Run(db, R"(
    define type StudentEmployee
      inherits Student with (dept renamed sdept),
      inherits Employee
      (hours_per_week: int4)
  )");

  Run(db, R"(
    create Departments : {Department}
    create People : {Person}
    create StudentEmployees : {StudentEmployee}
    append to Departments (name = "CS", building = "West")
    append to Departments (name = "Library", building = "Central")
  )");

  // A TA studies in CS but works for the Library: two independent
  // department references, distinguishable after the rename.
  Run(db, R"(
    append to StudentEmployees (name = "terry",
      birthday = Date("5/17/1964"), gpa = 3.8, hours_per_week = 15,
      sdept = A, dept = B, salary = 9000.0)
    from A in Departments, B in Departments
    where A.name = "CS" and B.name = "Library"
  )");
  Run(db, R"(retrieve (S.name, studies_in = S.sdept.name,
                       works_in = S.dept.name)
             from S in StudentEmployees)");

  // Substitutability: StudentEmployee objects may live in a {Person}
  // extent and answer Person-level queries.
  Run(db, R"(append to People (name = "plain", birthday = Date("1/1/1960")))");
  Run(db, R"(append to People (S) from S in StudentEmployees)",
      /*expect_error=*/true);  // terry is owned by StudentEmployees
  Run(db, R"(
    append to People (name = "casey", birthday = Date("2/2/1966"))
  )");
  Run(db, "retrieve (P.name, P.birthday) from P in People sort by P.name");

  // Functions along the lattice: Describe is overridden per type, with
  // late binding by default.
  Run(db, R"(define function Describe (P: Person) returns text as
             retrieve ("person"))");
  Run(db, R"(define function Describe (S: StudentEmployee) returns text as
             retrieve ("student-employee"))");
  Run(db, "retrieve (S.name, S.Describe) from S in StudentEmployees");
  Run(db, "retrieve (P.name, P.Describe) from P in People sort by P.name");

  // Early binding pins the Person version through Person-typed access.
  Run(db, R"(define early function Title (P: Person) returns text as
             retrieve ("Mx."))");
  Run(db, R"(define function Title (S: StudentEmployee) returns text as
             retrieve ("TA"))");
  Run(db, "create Someone : ref Person");
  Run(db, "assign Someone = S from S in StudentEmployees");
  Run(db, "retrieve (Someone.Title)");   // early: "Mx." via static type
  Run(db, "retrieve (S.Title) from S in StudentEmployees");  // "TA"

  // Diamond sanity: Person attributes arrive exactly once.
  Run(db, R"(retrieve (S.name, S.birthday, S.gpa, S.salary,
                       S.hours_per_week)
             from S in StudentEmployees)");

  if (g_failures > 0) {
    std::cout << g_failures << " step(s) misbehaved\n";
    return 1;
  }
  std::cout << "university example completed\n";
  return 0;
}

// Quickstart: the paper's running example (Figures 1-2) end to end —
// define an EXTRA schema with inheritance, an ADT attribute and own-ref
// components; load data; run EXCESS queries with implicit joins, nested
// sets, aggregates and updates.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "excess/database.h"

namespace {

void Run(exodus::Database& db, const std::string& query) {
  std::cout << "EXCESS> " << query << "\n";
  auto result = db.Execute(query);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n\n";
    return;
  }
  std::cout << db.Format(*result) << "\n";
}

}  // namespace

int main() {
  exodus::Database db;

  // --- Schema (paper Figure 1) -------------------------------------------
  Run(db, R"(
    define type Person (
      name: char[25],
      ssnum: int4,
      birthday: Date,
      kids: {own ref Person}
    )
  )");
  Run(db, R"(
    define type Department (
      name: char[15],
      floor: int4,
      budget: float8
    )
  )");
  Run(db, R"(
    define type Employee inherits Person (
      salary: float8,
      dept: ref Department
    )
  )");

  // Type/extent separation: databases contain user-created named
  // collections, not system-maintained type extents.
  Run(db, "create Departments : {Department}");
  Run(db, "create Employees : {Employee}");
  Run(db, R"(create Today : Date = Date("7/6/1988"))");

  // --- Data ---------------------------------------------------------------
  Run(db, R"(append to Departments (name = "Toys", floor = 2,
                                    budget = 100000.0))");
  Run(db, R"(append to Departments (name = "Shoes", floor = 1,
                                    budget = 50000.0))");
  Run(db, R"(
    append to Employees (name = "Mike", ssnum = 1234,
      birthday = Date("1/1/1955"), salary = 32000.0, dept = D,
      kids = {(name = "Casey", birthday = Date("3/5/1980")),
              (name = "Sam",   birthday = Date("7/7/1984"))})
    from D in Departments where D.name = "Toys"
  )");
  Run(db, R"(
    append to Employees (name = "David", ssnum = 5678,
      birthday = Date("2/2/1950"), salary = 45000.0, dept = D)
    from D in Departments where D.name = "Shoes"
  )");

  // --- Queries ------------------------------------------------------------
  // Implicit join through a reference path (GEM style).
  Run(db, R"(retrieve (E.name, E.salary) from E in Employees
             where E.dept.floor = 2)");

  // Nested-set query: children of second-floor employees (paper §3).
  Run(db, R"(retrieve (C.name) from C in Employees.kids
             where Employees.dept.floor = 2)");

  // Path-syntax range statement.
  Run(db, "range of K is Employees.kids");
  Run(db, "retrieve (K.name, K.birthday) sort by K.name");

  // Named objects.
  Run(db, "retrieve (Today)");
  Run(db, "create StarEmployee : ref Employee");
  Run(db, R"(assign StarEmployee = E from E in Employees
             where E.salary = max(F.salary from F in Employees))");
  Run(db, "retrieve (StarEmployee.name, StarEmployee.salary)");

  // Aggregates with `over` partitioning.
  Run(db, R"(retrieve unique (E.dept.name, avg(E.salary over E.dept))
             from E in Employees)");

  // The Complex ADT of paper Figure 7.
  Run(db, "retrieve (Complex(1.0, 2.0) + Complex(3.0, 4.0))");
  Run(db, "retrieve (Complex(3.0, 4.0).Magnitude)");

  // A derived-data EXCESS function.
  Run(db, R"(define function KidCount (P: Person) returns int4 as
             retrieve (count(P.kids)))");
  Run(db, "retrieve (E.name, E.KidCount) from E in Employees");

  // Updates: a raise for the toy department, then cascade delete.
  Run(db, R"(replace E (salary = E.salary * 1.1) from E in Employees
             where E.dept.name = "Toys")");
  Run(db, R"(retrieve (E.name, E.salary) from E in Employees)");
  std::cout << "live objects before delete: " << db.heap()->live_count()
            << "\n";
  Run(db, R"(delete E from E in Employees where E.name = "Mike")");
  std::cout << "live objects after delete (kids cascaded): "
            << db.heap()->live_count() << "\n";

  return 0;
}

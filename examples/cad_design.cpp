// An engineering-design scenario — the application class the paper's
// introduction motivates (CAD/geometric data, [Kemp87], "order parts for
// assembling a design object" [Ston87c]): composite assemblies built
// from own-ref part hierarchies, the Box spatial ADT with its
// `overlaps` operator, quantifiers, and recursive-ish costing through
// EXCESS functions.
//
// Build & run:  ./build/examples/cad_design

#include <iostream>

#include "excess/database.h"

namespace {

int g_failures = 0;

void Run(exodus::Database& db, const std::string& query) {
  std::cout << "EXCESS> " << query << "\n";
  auto result = db.Execute(query);
  if (!result.ok()) {
    std::cout << "error: " << result.status().ToString() << "\n\n";
    ++g_failures;
    return;
  }
  std::cout << db.Format(*result) << "\n";
}

}  // namespace

int main() {
  exodus::Database db;

  // A design is a composite object: an assembly *owns* its subassemblies
  // (own ref — deleted with the design, ORION composite semantics), but
  // *references* shared catalog parts (plain ref).
  Run(db, R"(
    define type CatalogPart (
      name: char[30],
      unit_cost: float8,
      bounds: Box
    )
    define type Component (
      label: char[30],
      part: ref CatalogPart,
      quantity: int4,
      placement: Box
    )
    define type Assembly (
      name: char[30],
      components: {own ref Component},
      envelope: Box
    )
    create Catalog : {CatalogPart}
    create Designs : {Assembly}
  )");

  Run(db, R"(append to Catalog (name = "gear-small", unit_cost = 2.5,
             bounds = Box(0.0, 0.0, 1.0, 1.0)))");
  Run(db, R"(append to Catalog (name = "gear-large", unit_cost = 7.25,
             bounds = Box(0.0, 0.0, 3.0, 3.0)))");
  Run(db, R"(append to Catalog (name = "axle", unit_cost = 1.2,
             bounds = Box(0.0, 0.0, 0.2, 4.0)))");

  Run(db, R"(
    append to Designs (name = "gearbox",
      envelope = Box(0.0, 0.0, 10.0, 8.0),
      components = {
        (label = "drive",  part = P1, quantity = 1,
         placement = Box(0.0, 0.0, 3.0, 3.0)),
        (label = "driven", part = P2, quantity = 2,
         placement = Box(2.5, 2.5, 3.5, 3.5)),
        (label = "shaft",  part = P3, quantity = 1,
         placement = Box(6.0, 0.0, 6.2, 4.0))
      })
    from P1 in Catalog, P2 in Catalog, P3 in Catalog
    where P1.name = "gear-large" and P2.name = "gear-small"
      and P3.name = "axle"
  )");

  // Bill of materials via nested iteration.
  Run(db, R"(
    retrieve (C.label, C.part.name, C.quantity,
              cost = C.part.unit_cost * C.quantity)
    from D in Designs, C in D.components
    where D.name = "gearbox" sort by C.label
  )");

  // Design cost: the query the paper quotes Stonebraker on — "compute
  // design costs or order parts for assembling a design object".
  Run(db, R"(define function Cost (A: Assembly) returns float8 as
             retrieve (sum(C.part.unit_cost * C.quantity
                           from C in A.components)))");
  Run(db, "retrieve (D.name, D.Cost) from D in Designs");

  // Spatial reasoning with the Box ADT and the `overlaps` operator.
  Run(db, R"(
    retrieve (A.label, B.label)
    from D in Designs, A in D.components, B in D.components
    where A.placement overlaps B.placement and A.label < B.label
  )");

  // Quantified design-rule check: every component inside the envelope.
  Run(db, R"(
    retrieve (D.name,
              fits = (all C in D.components :
                        D.envelope.Contains(C.placement)))
    from D in Designs
  )");

  // Interference count per design (aggregate with local range).
  Run(db, R"(
    retrieve (D.name,
              clashes = count(A from A in D.components, B in D.components
                              where A.placement overlaps B.placement
                                and A.label != B.label))
    from D in Designs
  )");

  // Engineering change order: swap the shaft for a cheaper part, then
  // delete the design — components cascade, catalog parts survive.
  Run(db, R"(append to Catalog (name = "axle-lite", unit_cost = 0.9,
             bounds = Box(0.0, 0.0, 0.2, 4.0)))");
  Run(db, R"(
    replace C (part = P)
    from D in Designs, C in D.components, P in Catalog
    where C.label = "shaft" and P.name = "axle-lite"
  )");
  Run(db, "retrieve (D.name, D.Cost) from D in Designs");

  std::cout << "objects before drop: " << db.heap()->live_count() << "\n";
  Run(db, R"(delete D from D in Designs where D.name = "gearbox")");
  std::cout << "objects after drop (components cascaded, catalog intact): "
            << db.heap()->live_count() << "\n";
  Run(db, "retrieve (count(P)) from P in Catalog");

  if (g_failures > 0) {
    std::cout << g_failures << " step(s) failed\n";
    return 1;
  }
  std::cout << "cad_design example completed\n";
  return 0;
}

// B4 — Nested-set query cost vs. nesting depth and fanout.
// Expected shape: cost is proportional to the number of (parent, child,
// ...) bindings enumerated, i.e. roots * fanout^depth; a filter at the
// outermost level prunes whole subtrees, so pushed-down predicates beat
// the same predicate at the innermost level.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

/// Builds `roots` Person objects, each with a kids tree of the given
/// fanout and depth (depth levels below the root).
std::unique_ptr<Database> BuildDb(int roots, int fanout, int depth) {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Person (name: char[30], age: int4, kids: {own ref Person})
    create People : {Person}
  )");
  // Build the kids literal bottom-up as EXCESS text.
  std::function<std::string(int, const std::string&)> subtree =
      [&](int level, const std::string& prefix) -> std::string {
    if (level == 0) return "";
    std::string out = ", kids = {";
    for (int i = 0; i < fanout; ++i) {
      if (i > 0) out += ", ";
      std::string name = prefix + "." + std::to_string(i);
      out += "(name = \"" + name + "\", age = " + std::to_string(level) +
             subtree(level - 1, name) + ")";
    }
    out += "}";
    return out;
  };
  for (int r = 0; r < roots; ++r) {
    std::string root_name = "p" + std::to_string(r);
    bench::MustExecute(db.get(), "append to People (name = \"" + root_name +
                                     "\", age = " + std::to_string(r % 50) +
                                     subtree(depth, root_name) + ")");
  }
  return db;
}

struct Key {
  int roots, fanout, depth;
  bool operator==(const Key& o) const {
    return roots == o.roots && fanout == o.fanout && depth == o.depth;
  }
};
Key g_key{0, 0, 0};
std::unique_ptr<Database> g_db;

Database* DbFor(int roots, int fanout, int depth) {
  Key k{roots, fanout, depth};
  if (!(g_key == k)) {
    g_db = BuildDb(roots, fanout, depth);
    g_key = k;
  }
  return g_db.get();
}

void BM_NestedIterationDepth2(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)), 2);
  size_t rows = 0;
  for (auto _ : state) {
    rows = bench::MustQuery(
        db,
        "retrieve (G.name) from P in People, K in P.kids, G in K.kids "
        "where G.age >= 0");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["bindings"] = static_cast<double>(rows);
}
BENCHMARK(BM_NestedIterationDepth2)
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({10, 8})
    ->Args({40, 4});

void BM_NestedIterationDepth3(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)), 3);
  size_t rows = 0;
  for (auto _ : state) {
    rows = bench::MustQuery(db,
                            "retrieve (X.name) from P in People, K in "
                            "P.kids, G in K.kids, X in G.kids");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["bindings"] = static_cast<double>(rows);
}
BENCHMARK(BM_NestedIterationDepth3)->Args({10, 2})->Args({10, 4});

void BM_OuterFilterPrunesSubtrees(benchmark::State& state) {
  Database* db = DbFor(40, 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (G.name) from P in People, K in P.kids, G in K.kids "
        "where P.age = 7"));
  }
}
BENCHMARK(BM_OuterFilterPrunesSubtrees);

void BM_InnerFilterVisitsEverything(benchmark::State& state) {
  Database* db = DbFor(40, 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (G.name) from P in People, K in P.kids, G in K.kids "
        "where G.name = \"p7.0.0\""));
  }
}
BENCHMARK(BM_InnerFilterVisitsEverything);

void BM_QuantifierOverNestedSet(benchmark::State& state) {
  Database* db = DbFor(40, 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (P.name) from P in People "
        "where all K in P.kids : K.age > 0"));
  }
}
BENCHMARK(BM_QuantifierOverNestedSet);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

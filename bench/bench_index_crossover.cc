// B3 — Full scan vs. B+tree index access, selectivity sweep.
// Expected shape: the index wins decisively at low selectivity
// (equality / narrow ranges); as the selected fraction approaches 1 the
// two converge, since both must touch every object. Hash index matches
// btree on equality probes.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

constexpr int kRows = 5000;

std::unique_ptr<Database> BuildDb(bool with_btree, bool with_hash) {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Employee (name: char[25], salary: float8, badge: int4)
    create Employees : {Employee}
  )");
  for (int i = 0; i < kRows; ++i) {
    bench::MustExecute(db.get(),
                       "append to Employees (name = \"e" + std::to_string(i) +
                           "\", salary = " + std::to_string(i % 1000) +
                           ".0, badge = " + std::to_string(i) + ")");
  }
  if (with_btree) {
    bench::MustExecute(db.get(),
                       "create index SalBtree on Employees (salary) "
                       "using btree");
  }
  if (with_hash) {
    bench::MustExecute(db.get(),
                       "create index BadgeHash on Employees (badge) "
                       "using hash");
  }
  return db;
}

Database* Db(bool btree, bool hash) {
  static std::unique_ptr<Database> with_idx = BuildDb(true, true);
  static std::unique_ptr<Database> no_idx = BuildDb(false, false);
  return (btree || hash) ? with_idx.get() : no_idx.get();
}

// state.range(0): selected rows per 1000 (selectivity in permil).
std::string RangeQuery(int permil) {
  // salary values are 0..999 uniformly; select salary < permil.
  return "retrieve (count(E)) from E in Employees where E.salary < " +
         std::to_string(permil) + ".0";
}

void BM_ScanSelectivity(benchmark::State& state) {
  Database* db = Db(false, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::MustQuery(db, RangeQuery(static_cast<int>(state.range(0)))));
  }
  state.counters["selectivity_permil"] = static_cast<double>(state.range(0));
}

void BM_BTreeSelectivity(benchmark::State& state) {
  Database* db = Db(true, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::MustQuery(db, RangeQuery(static_cast<int>(state.range(0)))));
  }
  state.counters["selectivity_permil"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_ScanSelectivity)->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);
BENCHMARK(BM_BTreeSelectivity)->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

void BM_ScanEqualityProbe(benchmark::State& state) {
  Database* db = Db(false, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (E.name) from E in Employees where E.badge = 2500"));
  }
}
BENCHMARK(BM_ScanEqualityProbe);

void BM_HashEqualityProbe(benchmark::State& state) {
  Database* db = Db(true, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (E.name) from E in Employees where E.badge = 2500"));
  }
}
BENCHMARK(BM_HashEqualityProbe);

void BM_BTreeEqualityProbe(benchmark::State& state) {
  Database* db = Db(true, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (E.name) from E in Employees where E.salary = 123.0"));
  }
}
BENCHMARK(BM_BTreeEqualityProbe);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

#ifndef EXODUS_BENCH_BENCH_COMMON_H_
#define EXODUS_BENCH_BENCH_COMMON_H_

// Shared helpers for the benchmark suite. Each bench binary regenerates
// one experiment of DESIGN.md §4 (B1..B10); EXPERIMENTS.md records the
// qualitative shape each one checks.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "excess/database.h"

namespace exodus::bench {

/// Executes a statement, aborting the benchmark process on failure
/// (misconfigured setup must not silently skew measurements).
inline void MustExecute(Database* db, const std::string& q) {
  auto r = db->Execute(q);
  if (!r.ok()) {
    std::cerr << "benchmark setup failed on:\n"
              << q << "\n"
              << r.status().ToString() << "\n";
    std::abort();
  }
}

/// Executes a query inside the timed region; aborts on error, returns
/// the row count so callers can fence against dead-code elimination.
inline size_t MustQuery(Database* db, const std::string& q) {
  auto r = db->Execute(q);
  if (!r.ok()) {
    std::cerr << "benchmark query failed:\n"
              << q << "\n"
              << r.status().ToString() << "\n";
    std::abort();
  }
  return r->rows.size();
}

}  // namespace exodus::bench

#endif  // EXODUS_BENCH_BENCH_COMMON_H_

// B18 — commit throughput vs durability mode (sync | group | async).
// Expected shape: `sync` pays one fdatasync per commit, so its
// throughput is pinned to the disk's sync rate regardless of writer
// count. `group` stages commits under a cheap mutex and lets the
// flusher make a whole batch durable with one write+fdatasync; with
// concurrent writers the batches fatten and commits/sec scales well
// past the sync line (the acceptance bar is >= 3x sync at 4 writers,
// with the JSON counter `fsyncs_per_commit` << 1, i.e. at most one
// fsync per flush batch). `async` shows the no-durability ceiling:
// staging cost only, records ride along with whatever flush happens
// next.
//
// The measured object is the WalWriter itself — the same group-commit
// path every session's `append`/`replace`/`delete` takes through
// Database::ExecuteStmtJournaled — so commits/sec here is statement
// commits/sec with execution cost stripped away.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "wal/wal_format.h"
#include "wal/wal_writer.h"

namespace exodus::wal {
namespace {

constexpr int kCommitsPerThreadPerIter = 64;

// A payload the size of a typical journaled statement.
const std::string& Payload() {
  static const std::string payload =
      "append to Employees (name = \"worker\", age = 30, salary = 50.0)";
  return payload;
}

std::string BenchWalPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/exodus_bench_durability.log";
}

void RemoveWal(const std::string& base) {
  auto segments = ListSegments(base);
  if (segments.ok()) {
    for (const std::string& p : *segments) std::remove(p.c_str());
  }
  std::remove(base.c_str());
}

/// `writers` threads each commit kCommitsPerThreadPerIter records per
/// iteration with the given durability; one fresh WAL per benchmark
/// run. Reports commits/sec and fsyncs-per-commit from the writer's
/// own counters.
void RunCommitBench(benchmark::State& state, Durability durability) {
  const int writers = static_cast<int>(state.range(0));
  const std::string base = BenchWalPath();
  RemoveWal(base);
  auto writer = WalWriter::Open(base, 1);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  WalWriter* w = writer->get();

  std::atomic<int> errors{0};
  int64_t commits = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kCommitsPerThreadPerIter; ++i) {
          auto lsn = w->Append(RecordType::kStatement, Payload(), durability);
          if (!lsn.ok()) ++errors;
        }
      });
    }
    for (auto& t : threads) t.join();
    commits += writers * kCommitsPerThreadPerIter;
  }
  if (errors.load() > 0) state.SkipWithError("append failures");

  // Async commits are not durable yet — flush outside the timed region
  // so the counters cover a fully durable log either way.
  auto st = w->Flush();
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  const WalWriter::Counters c = w->counters();
  state.SetItemsProcessed(commits);
  state.counters["writers"] = writers;
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.counters["fsyncs_per_commit"] =
      commits > 0 ? static_cast<double>(c.fsyncs) / static_cast<double>(commits)
                  : 0.0;
  state.counters["records_per_batch"] =
      c.flush_batches > 0 ? static_cast<double>(c.batch_records) /
                                static_cast<double>(c.flush_batches)
                          : 0.0;
  writer->reset();
  RemoveWal(base);
}

void BM_CommitSync(benchmark::State& state) {
  RunCommitBench(state, Durability::kSync);
}
BENCHMARK(BM_CommitSync)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_CommitGroup(benchmark::State& state) {
  RunCommitBench(state, Durability::kGroup);
}
BENCHMARK(BM_CommitGroup)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_CommitAsync(benchmark::State& state) {
  RunCommitBench(state, Durability::kAsync);
}
BENCHMARK(BM_CommitAsync)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace exodus::wal

BENCHMARK_MAIN();

// B2 — Implicit join through a reference path vs. an explicit value
// join, extent-size sweep.
// Expected shape: the reference path (`E.dept.floor`) is O(|E|): one
// dereference per employee. The value join (`E.dept_id = D.id`) now
// plans as a hash join — also O(|E| + |D|) — so the historical gap
// against the nested loop (O(|E| * |D|), kept measurable via the
// NestedLoop variant with hash joins disabled) collapses to the
// constant-factor cost of hashing vs dereferencing.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

std::unique_ptr<Database> BuildDb(int employees, int departments) {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Department (id: int4, name: char[20], floor: int4)
    define type Employee (name: char[25], salary: float8,
                          dept: ref Department, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  for (int d = 0; d < departments; ++d) {
    bench::MustExecute(db.get(),
                       "append to Departments (id = " + std::to_string(d) +
                           ", name = \"d" + std::to_string(d) +
                           "\", floor = " + std::to_string(d % 10) + ")");
  }
  for (int e = 0; e < employees; ++e) {
    int d = e % departments;
    bench::MustExecute(
        db.get(), "append to Employees (name = \"e" + std::to_string(e) +
                      "\", salary = " + std::to_string(e % 100) +
                      ".0, dept_id = " + std::to_string(d) +
                      ", dept = D) from D in Departments where D.id = " +
                      std::to_string(d));
  }
  return db;
}

struct Shared {
  std::unique_ptr<Database> db;
  int employees = 0;
  int departments = 0;
};
Shared g_shared;

Database* DbFor(int employees, int departments) {
  if (g_shared.employees != employees ||
      g_shared.departments != departments) {
    g_shared.db = BuildDb(employees, departments);
    g_shared.employees = employees;
    g_shared.departments = departments;
  }
  return g_shared.db.get();
}

void BM_ImplicitJoinViaRefPath(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = bench::MustQuery(
        db, "retrieve (E.name) from E in Employees where E.dept.floor = 3");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExplicitValueJoin(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = bench::MustQuery(
        db,
        "retrieve (E.name) from E in Employees, D in Departments "
        "where E.dept_id = D.id and D.floor = 3");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_ExplicitValueJoinNestedLoop(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  excess::OptimizerOptions saved = *db->mutable_optimizer_options();
  db->mutable_optimizer_options()->hash_join = false;
  size_t rows = 0;
  for (auto _ : state) {
    rows = bench::MustQuery(
        db,
        "retrieve (E.name) from E in Employees, D in Departments "
        "where E.dept_id = D.id and D.floor = 3");
    benchmark::DoNotOptimize(rows);
  }
  *db->mutable_optimizer_options() = saved;
  state.counters["rows"] = static_cast<double>(rows);
}

// Sweep: employees x departments.
BENCHMARK(BM_ImplicitJoinViaRefPath)
    ->Args({500, 10})
    ->Args({500, 50})
    ->Args({500, 200})
    ->Args({2000, 50});
BENCHMARK(BM_ExplicitValueJoin)
    ->Args({500, 10})
    ->Args({500, 50})
    ->Args({500, 200})
    ->Args({2000, 50});
BENCHMARK(BM_ExplicitValueJoinNestedLoop)
    ->Args({500, 10})
    ->Args({500, 50})
    ->Args({500, 200})
    ->Args({2000, 50});

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

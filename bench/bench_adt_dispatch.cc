// B7 — ADT operator dispatch overhead vs. built-in operators.
// Expected shape: an ADT-registered operator pays a registry lookup and
// a std::function call per evaluation — a small constant factor over the
// built-in float path, far from asymptotic.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

constexpr int kRows = 2000;

Database* Db() {
  static std::unique_ptr<Database> db = [] {
    auto d = std::make_unique<Database>();
    bench::MustExecute(d.get(), R"(
      define type Sample (x: float8, y: float8, c: Complex, when: Date,
                          box: Box)
      create Samples : {Sample}
    )");
    for (int i = 0; i < kRows; ++i) {
      bench::MustExecute(
          d.get(), "append to Samples (x = " + std::to_string(i % 100) +
                       ".0, y = 2.0, c = Complex(" + std::to_string(i % 10) +
                       ".0, 1.0), when = Date(" +
                       std::to_string(1950 + i % 70) +
                       ", 6, 15), box = Box(0.0, 0.0, " +
                       std::to_string(1 + i % 5) + ".0, 2.0))");
    }
    return d;
  }();
  return db.get();
}

void BM_BuiltinFloatAdd(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (S.x + S.y) from S in Samples"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_BuiltinFloatAdd);

void BM_AdtOperatorAdd(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (S.c + S.c) from S in Samples"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_AdtOperatorAdd);

void BM_AdtMethodCall(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (S.c.Magnitude) from S in Samples"));
  }
}
BENCHMARK(BM_AdtMethodCall);

void BM_AdtComparablePredicate(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (count(S)) from S in Samples "
        "where S.when < Date(\"1/1/1980\")"));
  }
}
BENCHMARK(BM_AdtComparablePredicate);

void BM_AdtIdentifierOperator(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (count(S)) from S in Samples "
        "where S.box overlaps Box(0.0, 0.0, 2.0, 2.0)"));
  }
}
BENCHMARK(BM_AdtIdentifierOperator);

void BM_BuiltinFloatPredicate(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (count(S)) from S in Samples where S.x < 30.0"));
  }
}
BENCHMARK(BM_BuiltinFloatPredicate);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B15 — Observability overhead: the cost of the always-on
// instrumentation (per-step row counters, sampled step timing, phase
// timing, registry flushes) on the B14 hash-join workload, and the
// incremental cost of each opt-in consumer. Expected shape: the
// baseline (tracing off) stays within a few percent of the
// pre-instrumentation executor — row counters are plain increments on
// the per-run PlanRuntime and step timing is sampled (first 64
// invocations, then 1 in 64) rather than per-invocation. A trace sink
// or a zero-threshold slow-query log adds the statement-text rendering
// and one JSON/record append per statement; EXPLAIN ANALYZE adds plan
// annotation; a metrics scrape is independent of statement execution.
//
// B20 — Wait-event subsystem overhead: the same ablation discipline
// for the wait-event profile (WaitEventGuard + per-session activity
// slots), instrumented vs EXODUS_WAIT_EVENTS=off, on two shapes. The
// CPU-bound B14 join shape bounds the fixed cost of guard
// construction on paths that rarely block (try_lock fast paths mean a
// guard is only built when an acquisition actually contends). The
// wait-heavy B18 group-commit shape — concurrent writer sessions
// committing appends through the full engine with group durability —
// exercises the guards where they actually fire (wal_group_commit /
// wal_fsync followers, contended extent latches). Budget: <= 5%
// overhead on both shapes.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "excess/session.h"
#include "obs/wait_event.h"
#include "wal/wal_format.h"

namespace exodus {
namespace {

// The B14 data: n employees joining n/10 departments (see
// bench_hash_join.cc); every employee matches exactly one department.
Database* Db(int employees) {
  static std::map<int, std::unique_ptr<Database>> dbs;
  auto it = dbs.find(employees);
  if (it != dbs.end()) return it->second.get();
  auto d = std::make_unique<Database>();
  bench::MustExecute(d.get(), R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    bench::MustExecute(d.get(),
                       "append to Departments (id = " + std::to_string(i) +
                           ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    bench::MustExecute(
        d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                     "\", salary = " + std::to_string(i % 500) +
                     ".0, dept_id = " + std::to_string(i % departments) + ")");
  }
  Database* out = d.get();
  dbs.emplace(employees, std::move(d));
  return out;
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

// The always-on cost: no sink, no slow-query threshold. Comparing this
// against B14's BM_EquiJoin_Hash at the same scale measures the
// instrumentation overhead (< 5% is the budget).
void BM_Join_Baseline(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_Baseline)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// A (null) JSON trace sink: statement text is rendered and the trace
// line is built and delivered for every statement.
void BM_Join_TraceSink(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  db->SetTraceSink([](const std::string& line) {
    benchmark::DoNotOptimize(line.data());
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  db->SetTraceSink(nullptr);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_TraceSink)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// Zero-threshold slow-query log: every statement renders its annotated
// plan and appends a record to the bounded log.
void BM_Join_SlowLog(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  db->SetSlowQueryThresholdMicros(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  db->SetSlowQueryThresholdMicros(-1);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_SlowLog)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// EXPLAIN ANALYZE: full execution plus plan annotation.
void BM_ExplainAnalyze(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  for (auto _ : state) {
    auto text = (*session)->Explain(kJoin, /*analyze=*/true);
    if (!text.ok()) std::abort();
    benchmark::DoNotOptimize(text->data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExplainAnalyze)->Arg(200)->Arg(3200)->Complexity();

// --- B20: wait-event subsystem overhead -----------------------------

// CPU-bound shape: the B14 join, with the wait-event profile on vs
// off. A read-only retrieve takes the shared database lock on the
// try_lock fast path and never journals, so almost no guards are
// constructed; the pair bounds the subsystem's cost on code that
// doesn't block.
void RunJoinWaitEventsBench(benchmark::State& state, bool wait_events) {
  Database* db = Db(static_cast<int>(state.range(0)));
  db->wait_profile()->SetEnabled(wait_events);
  bench::MustQuery(db, kJoin);  // warm the plan cache before timing
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  db->wait_profile()->SetEnabled(true);  // Db() instances are shared
  state.SetComplexityN(state.range(0));
}

void BM_Join_WaitEventsOn(benchmark::State& state) {
  RunJoinWaitEventsBench(state, true);
}
BENCHMARK(BM_Join_WaitEventsOn)->Arg(200)->Arg(3200)->Complexity();

void BM_Join_WaitEventsOff(benchmark::State& state) {
  RunJoinWaitEventsBench(state, false);
}
BENCHMARK(BM_Join_WaitEventsOff)->Arg(200)->Arg(3200)->Complexity();

// Wait-heavy shape: the B18 group-commit workload driven through the
// full engine. `writers` sessions (default group durability) each
// commit kAppendsPerThreadPerIter appends per iteration; followers
// park in wal_group_commit / leaders pay wal_fsync, and the writers
// contend on the Items extent latch — the paths where WaitEventGuards
// actually read the clock. `waits_per_commit` sanity-checks the
// ablation: ~0 with the profile off.
constexpr int kAppendsPerThreadPerIter = 16;

std::string BenchWalPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/exodus_bench_observability.log";
}

void RemoveWal(const std::string& base) {
  auto segments = wal::ListSegments(base);
  if (segments.ok()) {
    for (const std::string& p : *segments) std::remove(p.c_str());
  }
  std::remove(base.c_str());
}

void RunGroupCommitWaitEventsBench(benchmark::State& state,
                                   bool wait_events) {
  const int writers = static_cast<int>(state.range(0));
  const std::string base = BenchWalPath();
  RemoveWal(base);
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Item (id: int4, payload: char[32])
    create Items : {Item}
  )");
  auto st = db->EnableJournal(base);
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  db->wait_profile()->SetEnabled(wait_events);

  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(writers);
  for (int t = 0; t < writers; ++t) {
    auto s = db->CreateSession();
    if (!s.ok()) std::abort();
    sessions.push_back(std::move(*s));
  }

  const std::string append = "append to Items (id = 1, payload = \"w\")";
  std::atomic<int> errors{0};
  int64_t commits = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kAppendsPerThreadPerIter; ++i) {
          auto r = sessions[t]->Execute(append);
          if (!r.ok()) ++errors;
        }
      });
    }
    for (auto& t : threads) t.join();
    commits += writers * kAppendsPerThreadPerIter;
  }
  if (errors.load() > 0) state.SkipWithError("append failures");

  uint64_t waits = 0;
  for (size_t i = 1; i <= obs::kWaitEventCount; ++i) {
    waits += db->wait_profile()->count(static_cast<obs::WaitEvent>(i));
  }
  state.SetItemsProcessed(commits);
  state.counters["writers"] = writers;
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.counters["waits_per_commit"] =
      commits > 0 ? static_cast<double>(waits) / static_cast<double>(commits)
                  : 0.0;
  sessions.clear();
  db.reset();
  RemoveWal(base);
}

void BM_GroupCommit_WaitEventsOn(benchmark::State& state) {
  RunGroupCommitWaitEventsBench(state, true);
}
BENCHMARK(BM_GroupCommit_WaitEventsOn)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_GroupCommit_WaitEventsOff(benchmark::State& state) {
  RunGroupCommitWaitEventsBench(state, false);
}
BENCHMARK(BM_GroupCommit_WaitEventsOff)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// One metrics scrape: snapshot the registry index, then lock-free
// atomic reads. Independent of statement execution.
void BM_MetricsRender(benchmark::State& state) {
  Database* db = Db(3200);
  bench::MustQuery(db, kJoin);  // populate the series
  for (auto _ : state) {
    std::string text = db->metrics()->RenderPrometheus();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_MetricsRender);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

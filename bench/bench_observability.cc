// B15 — Observability overhead: the cost of the always-on
// instrumentation (per-step row counters, sampled step timing, phase
// timing, registry flushes) on the B14 hash-join workload, and the
// incremental cost of each opt-in consumer. Expected shape: the
// baseline (tracing off) stays within a few percent of the
// pre-instrumentation executor — row counters are plain increments on
// the per-run PlanRuntime and step timing is sampled (first 64
// invocations, then 1 in 64) rather than per-invocation. A trace sink
// or a zero-threshold slow-query log adds the statement-text rendering
// and one JSON/record append per statement; EXPLAIN ANALYZE adds plan
// annotation; a metrics scrape is independent of statement execution.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "excess/session.h"

namespace exodus {
namespace {

// The B14 data: n employees joining n/10 departments (see
// bench_hash_join.cc); every employee matches exactly one department.
Database* Db(int employees) {
  static std::map<int, std::unique_ptr<Database>> dbs;
  auto it = dbs.find(employees);
  if (it != dbs.end()) return it->second.get();
  auto d = std::make_unique<Database>();
  bench::MustExecute(d.get(), R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    bench::MustExecute(d.get(),
                       "append to Departments (id = " + std::to_string(i) +
                           ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    bench::MustExecute(
        d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                     "\", salary = " + std::to_string(i % 500) +
                     ".0, dept_id = " + std::to_string(i % departments) + ")");
  }
  Database* out = d.get();
  dbs.emplace(employees, std::move(d));
  return out;
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

// The always-on cost: no sink, no slow-query threshold. Comparing this
// against B14's BM_EquiJoin_Hash at the same scale measures the
// instrumentation overhead (< 5% is the budget).
void BM_Join_Baseline(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_Baseline)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// A (null) JSON trace sink: statement text is rendered and the trace
// line is built and delivered for every statement.
void BM_Join_TraceSink(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  db->SetTraceSink([](const std::string& line) {
    benchmark::DoNotOptimize(line.data());
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  db->SetTraceSink(nullptr);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_TraceSink)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// Zero-threshold slow-query log: every statement renders its annotated
// plan and appends a record to the bounded log.
void BM_Join_SlowLog(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  db->SetSlowQueryThresholdMicros(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kJoin));
  }
  db->SetSlowQueryThresholdMicros(-1);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Join_SlowLog)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// EXPLAIN ANALYZE: full execution plus plan annotation.
void BM_ExplainAnalyze(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  for (auto _ : state) {
    auto text = (*session)->Explain(kJoin, /*analyze=*/true);
    if (!text.ok()) std::abort();
    benchmark::DoNotOptimize(text->data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExplainAnalyze)->Arg(200)->Arg(3200)->Complexity();

// One metrics scrape: snapshot the registry index, then lock-free
// atomic reads. Independent of statement execution.
void BM_MetricsRender(benchmark::State& state) {
  Database* db = Db(3200);
  bench::MustQuery(db, kJoin);  // populate the series
  for (auto _ : state) {
    std::string text = db->metrics()->RenderPrometheus();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_MetricsRender);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

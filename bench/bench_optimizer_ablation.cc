// B11 — Optimizer ablation: contribution of each rule family.
// Expected shape: predicate pushdown dominates on multi-variable
// queries (it prunes whole inner loops); join reordering matters when
// extent sizes are skewed; index selection dominates selective
// single-variable predicates; hash joins replace the quadratic nested
// loop whenever an equi-join has no usable index (the *NoHash variants
// measure the pre-hash nested-loop baseline). Turning each off
// individually shows its marginal value; everything off approximates a
// naive interpreter.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

constexpr int kEmployees = 1500;
constexpr int kDepartments = 30;

Database* Db() {
  static std::unique_ptr<Database> db = [] {
    auto d = std::make_unique<Database>();
    bench::MustExecute(d.get(), R"(
      define type Department (id: int4, floor: int4)
      define type Employee (name: char[25], salary: float8,
                            dept_id: int4, dept: ref Department)
      create Departments : {Department}
      create Employees : {Employee}
    )");
    for (int i = 0; i < kDepartments; ++i) {
      bench::MustExecute(d.get(),
                         "append to Departments (id = " + std::to_string(i) +
                             ", floor = " + std::to_string(i % 5) + ")");
    }
    for (int i = 0; i < kEmployees; ++i) {
      bench::MustExecute(
          d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                       "\", salary = " + std::to_string(i % 500) +
                       ".0, dept_id = " + std::to_string(i % kDepartments) +
                       ", dept = D) from D in Departments where D.id = " +
                       std::to_string(i % kDepartments));
    }
    bench::MustExecute(d.get(),
                       "create index SalIdx on Employees (salary) using "
                       "btree");
    return d;
  }();
  return db.get();
}

// The workload: a join plus a selective indexed predicate.
const char* kJoinQuery =
    "retrieve (E.name) from E in Employees, D in Departments "
    "where E.dept_id = D.id and D.floor = 2 and E.salary < 25.0";
const char* kSelectiveQuery =
    "retrieve (E.name) from E in Employees where E.salary = 123.0";

void RunConfig(benchmark::State& state, bool pushdown, bool reorder,
               bool indexes, const char* query, bool hash_join = true) {
  Database* db = Db();
  excess::OptimizerOptions saved = *db->mutable_optimizer_options();
  db->mutable_optimizer_options()->predicate_pushdown = pushdown;
  db->mutable_optimizer_options()->join_reordering = reorder;
  db->mutable_optimizer_options()->use_indexes = indexes;
  db->mutable_optimizer_options()->hash_join = hash_join;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, query));
  }
  *db->mutable_optimizer_options() = saved;
}

void BM_Join_AllRulesOn(benchmark::State& state) {
  RunConfig(state, true, true, true, kJoinQuery);
}
void BM_Join_NoPushdown(benchmark::State& state) {
  RunConfig(state, false, true, true, kJoinQuery);
}
void BM_Join_NoReordering(benchmark::State& state) {
  RunConfig(state, true, false, true, kJoinQuery);
}
void BM_Join_NoIndexes(benchmark::State& state) {
  RunConfig(state, true, true, false, kJoinQuery);
}
void BM_Join_AllRulesOff(benchmark::State& state) {
  RunConfig(state, false, false, false, kJoinQuery, false);
}
// Isolates pushdown: no index access hides it otherwise (the index
// already consumes the selective conjunct).
void BM_Join_NoIndexesNoPushdown(benchmark::State& state) {
  RunConfig(state, false, true, false, kJoinQuery);
}
// Hash-join ablation: the same unindexed configs with hash joins off
// fall back to the nested loop — the pre-hash-join baseline.
void BM_Join_NoHash(benchmark::State& state) {
  RunConfig(state, true, true, true, kJoinQuery, false);
}
void BM_Join_NoIndexesNoHash(benchmark::State& state) {
  RunConfig(state, true, true, false, kJoinQuery, false);
}
void BM_Join_NoIndexesNoPushdownNoHash(benchmark::State& state) {
  RunConfig(state, false, true, false, kJoinQuery, false);
}
BENCHMARK(BM_Join_AllRulesOn);
BENCHMARK(BM_Join_NoPushdown);
BENCHMARK(BM_Join_NoReordering);
BENCHMARK(BM_Join_NoIndexes);
BENCHMARK(BM_Join_AllRulesOff);
BENCHMARK(BM_Join_NoIndexesNoPushdown);
BENCHMARK(BM_Join_NoHash);
BENCHMARK(BM_Join_NoIndexesNoHash);
BENCHMARK(BM_Join_NoIndexesNoPushdownNoHash);

void BM_Selective_AllRulesOn(benchmark::State& state) {
  RunConfig(state, true, true, true, kSelectiveQuery);
}
void BM_Selective_NoIndexes(benchmark::State& state) {
  RunConfig(state, true, true, false, kSelectiveQuery);
}
BENCHMARK(BM_Selective_AllRulesOn);
BENCHMARK(BM_Selective_NoIndexes);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B6 — Aggregate evaluation: global vs `over`-partitioned vs correlated
// subquery aggregates.
// Expected shape: a global aggregate is one pass; `over` partitioning
// adds a grouping pass (hash on partition key) but stays near-linear in
// rows; a correlated aggregate multiplies by the inner range size.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

std::unique_ptr<Database> BuildDb(int employees, int departments) {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Department (id: int4, name: char[20])
    define type Kid (allowance: float8)
    define type Employee (name: char[25], salary: float8,
                          dept: ref Department, kids: {own ref Kid})
    create Departments : {Department}
    create Employees : {Employee}
  )");
  for (int d = 0; d < departments; ++d) {
    bench::MustExecute(db.get(), "append to Departments (id = " +
                                     std::to_string(d) + ", name = \"d" +
                                     std::to_string(d) + "\")");
  }
  for (int e = 0; e < employees; ++e) {
    bench::MustExecute(
        db.get(),
        "append to Employees (name = \"e" + std::to_string(e) +
            "\", salary = " + std::to_string(e % 97) +
            ".0, kids = {(allowance = 1.0), (allowance = 2.0)}, "
            "dept = D) from D in Departments where D.id = " +
            std::to_string(e % departments));
  }
  return db;
}

struct Shared {
  std::unique_ptr<Database> db;
  int employees = 0, departments = 0;
};
Shared g_shared;

Database* DbFor(int employees, int departments) {
  if (g_shared.employees != employees ||
      g_shared.departments != departments) {
    g_shared.db = BuildDb(employees, departments);
    g_shared.employees = employees;
    g_shared.departments = departments;
  }
  return g_shared.db.get();
}

void BM_GlobalAggregate(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (count(E), sum(E.salary), avg(E.salary)) "
            "from E in Employees"));
  }
}
BENCHMARK(BM_GlobalAggregate)->Arg(200)->Arg(1000)->Arg(4000);

void BM_PartitionedAggregate(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve unique (E.dept.name, avg(E.salary over E.dept)) "
        "from E in Employees"));
  }
  state.counters["groups"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_PartitionedAggregate)
    ->Args({1000, 4})
    ->Args({1000, 16})
    ->Args({1000, 64})
    ->Args({4000, 16});

void BM_CorrelatedSubqueryAggregate(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (E.name, sum(K.allowance from K in E.kids)) "
        "from E in Employees"));
  }
}
BENCHMARK(BM_CorrelatedSubqueryAggregate)->Arg(200)->Arg(1000)->Arg(4000);

void BM_MedianSetFunction(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (median(E.salary)) from E in Employees"));
  }
}
BENCHMARK(BM_MedianSetFunction)->Arg(200)->Arg(1000)->Arg(4000);

void BM_UniqueAggregate(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (count(unique E.salary)) from E in Employees"));
  }
}
BENCHMARK(BM_UniqueAggregate)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B19 — Morsel-driven intra-query parallelism: the B14 join sweep and
// the B16 aggregate sweep re-run at exec_threads 1 / 2 / 4 / 8 on
// identical data (default batch size, so 3200 employees split into 4
// morsels at 1024 rows/batch — smaller batches are swept separately to
// show scheduling overhead vs. morsel count). exec_threads = 1 is the
// serial batch executor: the speedup of 4 workers over it on a >= 4
// core host is the headline number tracked in EXPERIMENTS.md. On a
// single-core runner the sweep degenerates to scheduling overhead
// measurement (documented there); the setup still asserts the
// parallel-path invariants — morsel count = ceil(rows / batch_size),
// every parallel query moves exodus_exec_morsels_total and
// exodus_exec_parallel_queries_total, serial queries move neither.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "excess/session.h"
#include "obs/metrics.h"

namespace exodus {
namespace {

// B14 data generator: n employees joining n/10 departments. Salaries
// are whole floats (FP-exact sums), so parallel partial-aggregate
// merging must reproduce serial results bit for bit.
Database* Db(int employees) {
  static std::map<int, std::unique_ptr<Database>> dbs;
  auto it = dbs.find(employees);
  if (it != dbs.end()) return it->second.get();
  auto d = std::make_unique<Database>();
  bench::MustExecute(d.get(), R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    bench::MustExecute(d.get(),
                       "append to Departments (id = " + std::to_string(i) +
                           ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    bench::MustExecute(
        d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                     "\", salary = " + std::to_string(i % 500) +
                     ".0, dept_id = " + std::to_string(i % departments) + ")");
  }
  Database* out = d.get();
  dbs.emplace(employees, std::move(d));
  return out;
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

const char* kAggregate =
    "retrieve unique (E.dept_id, s = sum(E.salary over E.dept_id), "
    "u = count(unique E.salary over E.dept_id)) from E in Employees";

// One-time sanity pass per database: the parallel path actually engages
// and its accounting invariants hold. Benchmarks measuring a path that
// silently fell back to serial would be meaningless.
void AssertParallelInvariants(Database* db, int employees) {
  static std::map<Database*, bool> checked;
  if (checked[db]) return;
  checked[db] = true;
  obs::Counter* morsels = db->metrics()->GetCounter("exodus_exec_morsels_total");
  obs::Counter* queries =
      db->metrics()->GetCounter("exodus_exec_parallel_queries_total");
  excess::ExecOptions saved = *db->mutable_exec_options();

  db->mutable_exec_options()->vectorized = true;
  db->mutable_exec_options()->batch_size = 256;
  db->mutable_exec_options()->exec_threads = 1;
  uint64_t m0 = morsels->value();
  uint64_t q0 = queries->value();
  const size_t serial_rows = bench::MustQuery(db, kJoin);
  if (morsels->value() != m0 || queries->value() != q0) {
    std::cerr << "B19 invariant violated: serial execution moved the "
                 "parallel series\n";
    std::abort();
  }

  db->mutable_exec_options()->exec_threads = 4;
  m0 = morsels->value();
  q0 = queries->value();
  const size_t parallel_rows = bench::MustQuery(db, kJoin);
  const uint64_t expect_morsels =
      (static_cast<uint64_t>(employees) + 255) / 256;
  if (morsels->value() - m0 != expect_morsels) {
    std::cerr << "B19 invariant violated: expected " << expect_morsels
              << " morsels for " << employees << " rows at batch 256, got "
              << morsels->value() - m0 << "\n";
    std::abort();
  }
  if (queries->value() - q0 != 1) {
    std::cerr << "B19 invariant violated: parallel query count moved by "
              << queries->value() - q0 << ", want 1\n";
    std::abort();
  }
  if (parallel_rows != serial_rows) {
    std::cerr << "B19 invariant violated: parallel rows " << parallel_rows
              << " != serial rows " << serial_rows << "\n";
    std::abort();
  }
  *db->mutable_exec_options() = saved;
}

// Runs `query` at state.range(1) worker threads over state.range(0)
// employees (batch size state.range(2)).
void RunParallel(benchmark::State& state, const char* query) {
  const int employees = static_cast<int>(state.range(0));
  Database* db = Db(employees);
  AssertParallelInvariants(db, employees);
  excess::ExecOptions saved = *db->mutable_exec_options();
  db->mutable_exec_options()->vectorized = true;
  db->mutable_exec_options()->batch_size = static_cast<int>(state.range(2));
  db->mutable_exec_options()->exec_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, query));
  }
  *db->mutable_exec_options() = saved;
  state.SetComplexityN(state.range(0));
}

// Join thread sweep: 3200 and 12800 employees x 1/2/4/8 workers at
// batch sizes 256 (many morsels) and 1024 (the default).
void BM_ParallelJoin(benchmark::State& state) { RunParallel(state, kJoin); }
BENCHMARK(BM_ParallelJoin)
    ->ArgsProduct({{3200, 12800}, {1, 2, 4, 8}, {256, 1024}})
    ->Complexity();

// Grouped-aggregate thread sweep over the same data: exercises the
// parallel materialize pipeline plus partial-aggregate merging.
void BM_ParallelAggregate(benchmark::State& state) {
  RunParallel(state, kAggregate);
}
BENCHMARK(BM_ParallelAggregate)
    ->ArgsProduct({{3200, 12800}, {1, 2, 4, 8}, {256, 1024}})
    ->Complexity();

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B13 — networked query-server throughput vs. worker-pool size.
// Expected shape: eight blocking client connections drive read-only
// retrieves; server-side execution parallelism is bounded by the
// worker pool, so throughput grows with workers until the scan-bound
// queries saturate the cores. The acceptance bar is >= 2x queries/sec
// at 4 workers over 1 worker. The mixed variant (1 in 16 statements a
// mutation taking the database lock exclusively) shows the
// reader/writer lock keeping read scaling mostly intact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"

namespace exodus {
namespace {

constexpr int kRows = 1024;
constexpr int kClients = 8;
constexpr int kQueriesPerClientPerIter = 8;

// A scan-bound selective retrieve: heavy enough that execution (not
// socket round-trips) dominates, so pool size is the limiting factor.
constexpr char kReadQuery[] =
    "retrieve (E.name, E.salary) from E in Employees "
    "where E.age > 30 and E.salary > 80.0";

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Employee (name: char[25], age: int4, salary: float8)
    create Employees : {Employee}
  )");
  for (int i = 0; i < kRows; ++i) {
    bench::MustExecute(db.get(),
                       "append to Employees (name = \"e" +
                           std::to_string(i) + "\", age = " +
                           std::to_string(20 + i % 50) + ", salary = " +
                           std::to_string(10 + i % 90) + ".0)");
  }
  return db;
}

/// Eight persistent client connections issue `kReadQuery` (plus an
/// occasional append when `mutation_every` > 0); one benchmark
/// iteration is kClients x kQueriesPerClientPerIter statements.
void RunServerBench(benchmark::State& state, int mutation_every) {
  const int workers = static_cast<int>(state.range(0));
  auto db = MakeDb();
  server::ServerOptions options;
  options.port = 0;
  options.workers = static_cast<size_t>(workers);
  server::Server srv(db.get(), options);
  auto st = srv.Start();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }

  std::vector<std::unique_ptr<server::Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", srv.port());
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      srv.Stop();
      return;
    }
    clients.push_back(std::move(*c));
  }

  std::atomic<int> errors{0};
  int64_t statements = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerIter; ++q) {
          if (mutation_every > 0 &&
              (c * kQueriesPerClientPerIter + q) % mutation_every == 0) {
            auto r = clients[c]->Query(
                "append to Employees (name = \"x\", age = 30, "
                "salary = 50.0)");
            if (!r.ok()) ++errors;
          } else {
            auto r = clients[c]->Query(kReadQuery);
            if (!r.ok() || r->rows.empty()) ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    statements += kClients * kQueriesPerClientPerIter;
  }
  if (errors.load() > 0) state.SkipWithError("query failures");
  state.SetItemsProcessed(statements);
  state.counters["workers"] = workers;
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(statements),
                         benchmark::Counter::kIsRate);
  clients.clear();
  srv.Stop();
}

void BM_ServerReadThroughput(benchmark::State& state) {
  RunServerBench(state, /*mutation_every=*/0);
}
BENCHMARK(BM_ServerReadThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ServerMixedThroughput(benchmark::State& state) {
  RunServerBench(state, /*mutation_every=*/16);
}
BENCHMARK(BM_ServerMixedThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// B17 — read latency under a sustained writer, MVCC vs the legacy
// exclusive lock. A background connection runs long full-scan
// replaces over a large Ledger extent (several ms each) while one
// reader times cheap indexed point lookups (~25 us) against a small
// separate Accounts extent. Under the `locked` oracle every replace
// holds the database exclusively, so a read arriving mid-statement
// waits out the whole scan and read p99 ≈ the write duration; under
// `snapshot` isolation (the default) the writer holds only the Ledger
// latch, readers run lock-free against pinned epochs, and the tail
// shrinks to scheduler preemption (on a single-CPU host the reader
// still has to displace the scanning writer from the core — with more
// cores it would overlap entirely). The per-query p50/p99 land in the
// JSON counters `read_p50_us` / `read_p99_us`.
constexpr int kLedgerRows = 65536;
constexpr int kAccountRows = 1024;

void RunReadLatencyUnderWriter(benchmark::State& state,
                               const char* isolation) {
  // Bulk-load in locked mode: in-place appends, no per-statement
  // container clone. The isolation under test is set afterwards, so
  // the server's per-connection sessions pick it up from the
  // environment at connect time.
  ::setenv("EXODUS_ISOLATION", "locked", 1);
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type LedgerRow (name: char[25], age: int4, salary: float8)
    create Ledger : {LedgerRow}
    create Accounts : {LedgerRow}
  )");
  for (int i = 0; i < kLedgerRows; ++i) {
    bench::MustExecute(db.get(),
                       "append to Ledger (name = \"e" + std::to_string(i) +
                           "\", age = " + std::to_string(20 + i % 50) +
                           ", salary = " + std::to_string(10 + i % 90) +
                           ".0)");
  }
  for (int i = 0; i < kAccountRows; ++i) {
    bench::MustExecute(db.get(),
                       "append to Accounts (name = \"a" + std::to_string(i) +
                           "\", age = " + std::to_string(20 + i % 50) +
                           ", salary = " + std::to_string(10 + i % 90) +
                           ".0)");
  }
  bench::MustExecute(
      db.get(), "create index AcctNameIdx on Accounts (name) using hash");
  ::setenv("EXODUS_ISOLATION", isolation, 1);
  server::ServerOptions options;
  options.port = 0;
  options.workers = 4;
  server::Server srv(db.get(), options);
  auto st = srv.Start();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    ::unsetenv("EXODUS_ISOLATION");
    return;
  }

  auto writer = server::Client::Connect("127.0.0.1", srv.port());
  auto reader = server::Client::Connect("127.0.0.1", srv.port());
  if (!writer.ok() || !reader.ok()) {
    state.SkipWithError("connect failed");
    srv.Stop();
    ::unsetenv("EXODUS_ISOLATION");
    return;
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread writer_thread([&] {
    int gen = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // ~1300 rows per statement, found by full 65k-row scan (age is
      // unindexed) — a deliberately long write. Under the locked
      // oracle it holds the database exclusively for the whole scan;
      // under MVCC it holds only the Ledger latch, which the reader
      // never touches.
      auto r = (*writer)->Query(
          "replace E (salary = " + std::to_string(81 + (gen % 15)) +
          ".0) from E in Ledger where E.age = " +
          std::to_string(20 + (gen % 50)) + " and E.salary > 0.0");
      ++gen;
      if (!r.ok()) ++errors;
      // Pace the writer below 100% duty: a fully CPU-saturating
      // writer makes every reader tail reflect run-queue wait in both
      // modes, hiding what the lock itself costs. The 1 ms gap also
      // sizes the delayed-read fraction: the serial reader completes
      // ~40 fast reads per gap, so the one read that lands mid-write
      // sits just above the 99th percentile cutoff.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<double> lat_us;
  int64_t reads = 0;
  for (auto _ : state) {
    for (int q = 0; q < kQueriesPerClientPerIter; ++q) {
      // An indexed point lookup: cheap enough that any queueing behind
      // the writer dominates its latency.
      auto t0 = std::chrono::steady_clock::now();
      auto r = (*reader)->Query(
          "retrieve (E.name, E.salary) from E in Accounts "
          "where E.name = \"a" +
          std::to_string((reads * 37) % kAccountRows) + "\"");
      auto t1 = std::chrono::steady_clock::now();
      if (!r.ok() || r->rows.empty()) ++errors;
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      ++reads;
      // Pace the reads. A back-to-back reader self-throttles during
      // write statements (each blocked read absorbs the whole window,
      // classic coordinated omission) and its continuous shared-lock
      // stream starves the locked writer outright; a paced reader
      // samples the latency distribution the way an independent
      // client actually experiences it.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
  stop.store(true, std::memory_order_release);
  writer_thread.join();
  if (errors.load() > 0) state.SkipWithError("query failures");

  std::sort(lat_us.begin(), lat_us.end());
  auto pct = [&](double p) {
    if (lat_us.empty()) return 0.0;
    size_t i = static_cast<size_t>(p * (lat_us.size() - 1));
    return lat_us[i];
  };
  state.SetItemsProcessed(reads);
  state.counters["read_p50_us"] = pct(0.50);
  state.counters["read_p99_us"] = pct(0.99);
  state.counters["read_p999_us"] = pct(0.999);
  state.counters["read_max_us"] = lat_us.empty() ? 0.0 : lat_us.back();
  reader->reset();
  writer->reset();
  srv.Stop();
  ::unsetenv("EXODUS_ISOLATION");
}

void BM_ServerReadLatencyUnderWriter_Snapshot(benchmark::State& state) {
  RunReadLatencyUnderWriter(state, "snapshot");
}
BENCHMARK(BM_ServerReadLatencyUnderWriter_Snapshot)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ServerReadLatencyUnderWriter_Locked(benchmark::State& state) {
  RunReadLatencyUnderWriter(state, "locked");
}
BENCHMARK(BM_ServerReadLatencyUnderWriter_Locked)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

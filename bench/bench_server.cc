// B13 — networked query-server throughput vs. worker-pool size.
// Expected shape: eight blocking client connections drive read-only
// retrieves; server-side execution parallelism is bounded by the
// worker pool, so throughput grows with workers until the scan-bound
// queries saturate the cores. The acceptance bar is >= 2x queries/sec
// at 4 workers over 1 worker. The mixed variant (1 in 16 statements a
// mutation taking the database lock exclusively) shows the
// reader/writer lock keeping read scaling mostly intact.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"

namespace exodus {
namespace {

constexpr int kRows = 1024;
constexpr int kClients = 8;
constexpr int kQueriesPerClientPerIter = 8;

// A scan-bound selective retrieve: heavy enough that execution (not
// socket round-trips) dominates, so pool size is the limiting factor.
constexpr char kReadQuery[] =
    "retrieve (E.name, E.salary) from E in Employees "
    "where E.age > 30 and E.salary > 80.0";

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), R"(
    define type Employee (name: char[25], age: int4, salary: float8)
    create Employees : {Employee}
  )");
  for (int i = 0; i < kRows; ++i) {
    bench::MustExecute(db.get(),
                       "append to Employees (name = \"e" +
                           std::to_string(i) + "\", age = " +
                           std::to_string(20 + i % 50) + ", salary = " +
                           std::to_string(10 + i % 90) + ".0)");
  }
  return db;
}

/// Eight persistent client connections issue `kReadQuery` (plus an
/// occasional append when `mutation_every` > 0); one benchmark
/// iteration is kClients x kQueriesPerClientPerIter statements.
void RunServerBench(benchmark::State& state, int mutation_every) {
  const int workers = static_cast<int>(state.range(0));
  auto db = MakeDb();
  server::ServerOptions options;
  options.port = 0;
  options.workers = static_cast<size_t>(workers);
  server::Server srv(db.get(), options);
  auto st = srv.Start();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }

  std::vector<std::unique_ptr<server::Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", srv.port());
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      srv.Stop();
      return;
    }
    clients.push_back(std::move(*c));
  }

  std::atomic<int> errors{0};
  int64_t statements = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (int q = 0; q < kQueriesPerClientPerIter; ++q) {
          if (mutation_every > 0 &&
              (c * kQueriesPerClientPerIter + q) % mutation_every == 0) {
            auto r = clients[c]->Query(
                "append to Employees (name = \"x\", age = 30, "
                "salary = 50.0)");
            if (!r.ok()) ++errors;
          } else {
            auto r = clients[c]->Query(kReadQuery);
            if (!r.ok() || r->rows.empty()) ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    statements += kClients * kQueriesPerClientPerIter;
  }
  if (errors.load() > 0) state.SkipWithError("query failures");
  state.SetItemsProcessed(statements);
  state.counters["workers"] = workers;
  state.counters["qps"] =
      benchmark::Counter(static_cast<double>(statements),
                         benchmark::Counter::kIsRate);
  clients.clear();
  srv.Stop();
}

void BM_ServerReadThroughput(benchmark::State& state) {
  RunServerBench(state, /*mutation_every=*/0);
}
BENCHMARK(BM_ServerReadThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ServerMixedThroughput(benchmark::State& state) {
  RunServerBench(state, /*mutation_every=*/16);
}
BENCHMARK(BM_ServerMixedThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

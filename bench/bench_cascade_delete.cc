// B5 — Cascade delete of composite (own ref) hierarchies, fanout sweep.
// Expected shape: deleting an owner is proportional to the size of the
// owned closure, and a single cascade delete of the parent beats issuing
// one EXCESS delete per child followed by the parent (statement
// overhead per object dominates the fine-grained variant).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

void Setup(Database* db) {
  bench::MustExecute(db, R"(
    define type Part (name: char[30], subparts: {own ref Part})
    create Assemblies : {Part}
  )");
}

void AppendAssembly(Database* db, int fanout) {
  std::string kids = "{";
  for (int i = 0; i < fanout; ++i) {
    if (i > 0) kids += ", ";
    kids += "(name = \"c" + std::to_string(i) + "\", subparts = {";
    for (int j = 0; j < fanout; ++j) {
      if (j > 0) kids += ", ";
      kids += "(name = \"g" + std::to_string(i) + "_" + std::to_string(j) +
              "\")";
    }
    kids += "})";
  }
  kids += "}";
  bench::MustExecute(
      db, "append to Assemblies (name = \"root\", subparts = " + kids + ")");
}

void BM_CascadeDelete(benchmark::State& state) {
  int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    Setup(&db);
    AppendAssembly(&db, fanout);
    state.ResumeTiming();
    bench::MustExecute(&db, "delete A from A in Assemblies");
    state.PauseTiming();
    if (db.heap()->live_count() != 0) std::abort();
    state.ResumeTiming();
  }
  state.counters["objects"] =
      static_cast<double>(1 + fanout + fanout * fanout);
}
BENCHMARK(BM_CascadeDelete)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

void BM_ManualChildByChildDelete(benchmark::State& state) {
  int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    Setup(&db);
    AppendAssembly(&db, fanout);
    state.ResumeTiming();
    // Grandchildren, then children, then the root — one statement per
    // level (each statement still deletes a whole binding set).
    bench::MustExecute(&db,
                       "delete G from A in Assemblies, C in A.subparts, "
                       "G in C.subparts");
    bench::MustExecute(&db,
                       "delete C from A in Assemblies, C in A.subparts");
    bench::MustExecute(&db, "delete A from A in Assemblies");
    state.PauseTiming();
    if (db.heap()->live_count() != 0) std::abort();
    state.ResumeTiming();
  }
  state.counters["objects"] =
      static_cast<double>(1 + fanout + fanout * fanout);
}
BENCHMARK(BM_ManualChildByChildDelete)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

void BM_DanglingRefNullification(benchmark::State& state) {
  // GEM-style integrity: deleting referenced objects leaves dangling
  // refs that read as null; measure the read path over dangles.
  Database db;
  bench::MustExecute(&db, R"(
    define type Target (x: int4)
    define type Holder (t: ref Target)
    create Targets : {Target}
    create Holders : {Holder}
  )");
  for (int i = 0; i < 500; ++i) {
    bench::MustExecute(&db, "append to Targets (x = " + std::to_string(i) +
                                ")");
    bench::MustExecute(&db,
                       "append to Holders (t = T) from T in Targets "
                       "where T.x = " +
                           std::to_string(i));
  }
  bench::MustExecute(&db, "delete T from T in Targets where T.x % 2 = 0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        &db, "retrieve (count(H)) from H in Holders where isnull(H.t)"));
  }
}
BENCHMARK(BM_DanglingRefNullification);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B10 — EXCESS function invocation (derived data) vs. inlined
// expressions and stored attributes.
// Expected shape: a function call re-binds and executes its body per
// invocation, costing a multiple of the inlined expression; stored
// (materialized) attributes are cheapest; procedures add per-binding
// statement overhead.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

constexpr int kRows = 1000;

Database* Db() {
  static std::unique_ptr<Database> db = [] {
    auto d = std::make_unique<Database>();
    bench::MustExecute(d.get(), R"(
      define type Kid (allowance: float8)
      define type Employee (name: char[25], salary: float8,
                            wealth_cache: float8, kids: {own ref Kid})
      create Employees : {Employee}
    )");
    for (int i = 0; i < kRows; ++i) {
      bench::MustExecute(
          d.get(),
          "append to Employees (name = \"e" + std::to_string(i) +
              "\", salary = " + std::to_string(i % 100) +
              ".0, kids = {(allowance = 1.0), (allowance = 2.0)})");
    }
    bench::MustExecute(d.get(), R"(
      define function Wealth (E: Employee) returns float8 as
        retrieve (E.salary + sum(K.allowance from K in E.kids))
    )");
    bench::MustExecute(d.get(), R"(
      define procedure CacheWealth (E: Employee) as
        replace E (wealth_cache = E.salary + 3.0)
    )");
    bench::MustExecute(d.get(), "execute CacheWealth(E) from E in Employees");
    return d;
  }();
  return db.get();
}

void BM_InlineExpression(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (E.salary + sum(K.allowance from K in E.kids)) "
        "from E in Employees"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_InlineExpression);

void BM_FunctionCall(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::MustQuery(db, "retrieve (E.Wealth) from E in Employees"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_FunctionCall);

void BM_MaterializedAttribute(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (E.wealth_cache) from E in Employees"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_MaterializedAttribute);

void BM_FunctionInPredicate(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve (count(E)) from E in Employees where E.Wealth > 50.0"));
  }
}
BENCHMARK(BM_FunctionInPredicate);

void BM_ProcedurePerBinding(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    bench::MustExecute(db, "execute CacheWealth(E) from E in Employees");
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ProcedurePerBinding);

void BM_DirectReplacePerBinding(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    bench::MustExecute(
        db, "replace E (wealth_cache = E.salary + 3.0) from E in Employees");
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DirectReplacePerBinding);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

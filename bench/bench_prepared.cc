// B12 — prepared-statement execution vs. the string-only convenience
// API. Expected shape: Database::Execute re-lexes, re-parses, re-binds
// and re-optimizes the statement text on every call, while a
// PreparedStatement pays that once and then runs the cached plan, so
// per-call cost drops by a large constant factor (the acceptance bar is
// >= 3x on the selective retrieve below). A paired DDL variant shows
// the re-plan-on-invalidation path staying close to one-shot Execute.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"
#include "excess/session.h"

namespace exodus {
namespace {

constexpr int kRows = 512;

Database* Db() {
  static std::unique_ptr<Database> db = [] {
    auto d = std::make_unique<Database>();
    bench::MustExecute(d.get(), R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
    )");
    for (int i = 0; i < kRows; ++i) {
      bench::MustExecute(d.get(),
                         "append to Employees (name = \"e" +
                             std::to_string(i) + "\", age = " +
                             std::to_string(20 + i % 50) + ", salary = " +
                             std::to_string(10 + i % 90) + ".0)");
    }
    // An age index keeps the execution itself cheap (a B-tree probe),
    // so the per-call difference between the two APIs is dominated by
    // what this benchmark is about: re-lex/re-parse/re-optimize cost.
    bench::MustExecute(d.get(),
                       "create index AgeIdx on Employees (age) using btree");
    return d;
  }();
  return db.get();
}

constexpr char kQuery[] =
    "retrieve (E.name) from E in Employees where E.age = $1";
constexpr char kQueryLiteral[] =
    "retrieve (E.name) from E in Employees where E.age = 68";

/// Baseline: one-shot string execution — lex/parse/bind/optimize every
/// iteration.
void BM_ExecuteString(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kQueryLiteral));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_ExecuteString);

/// Prepared: plan once, execute many.
void BM_ExecutePrepared(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  auto stmt = (*session)->Prepare(kQuery);
  if (!stmt.ok()) std::abort();
  if (!(*stmt)->Bind(1, 68).ok()) std::abort();
  for (auto _ : state) {
    auto r = (*stmt)->Execute();
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_ExecutePrepared);

/// Same pair without the index: execution is a full extent scan, so
/// the planning overhead amortizes against real work.
void BM_ExecuteStringScan(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (E.name) from E in Employees where E.salary > 95.0"));
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_ExecuteStringScan);

void BM_ExecutePreparedScan(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.salary > $1");
  if (!stmt.ok()) std::abort();
  if (!(*stmt)->Bind(1, 95.0).ok()) std::abort();
  for (auto _ : state) {
    auto r = (*stmt)->Execute();
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.counters["rows"] = kRows;
}
BENCHMARK(BM_ExecutePreparedScan);

/// Prepare cost itself when the plan cache already holds the text
/// (handle construction + cache hit; no parsing).
void BM_RePrepareCacheHit(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  if (!(*session)->Prepare(kQuery).ok()) std::abort();  // warm the cache
  for (auto _ : state) {
    auto stmt = (*session)->Prepare(kQuery);
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt->get());
  }
}
BENCHMARK(BM_RePrepareCacheHit);

/// Worst case: a DDL statement between every pair of executions forces
/// a full re-plan each time — prepared execution degrades to roughly
/// the one-shot cost, never below it.
void BM_PreparedWithDdlChurn(benchmark::State& state) {
  Database* db = Db();  // untimed setup
  auto session = db->CreateSession();
  if (!session.ok()) std::abort();
  auto stmt = (*session)->Prepare(kQuery);
  if (!stmt.ok()) std::abort();
  if (!(*stmt)->Bind(1, 68).ok()) std::abort();
  // Static: the benchmark harness re-enters this function while tuning
  // the iteration count, and type names cannot be reused.
  static int generation = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bench::MustExecute(db, "define type Churn" + std::to_string(generation++) +
                               " (x: int4)");
    state.ResumeTiming();
    auto r = (*stmt)->Execute();
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_PreparedWithDdlChurn);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B14 — Hash equi-joins: build-once/probe-per-row vs the nested loop
// and vs an index-driven join. Expected shape: the nested loop grows as
// n*m and the hash join as n+m, so the gap widens roughly by the
// build-side factor as extents grow; an index equality scan still wins
// on selective point probes (it touches only matching members, where
// the hash join must still enumerate the probe side). Hash aggregation
// is measured over the same data: grouped aggregates are a single pass
// regardless of group count.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

// One database per scale: n employees joining n/10 departments.
Database* Db(int employees) {
  static std::map<int, std::unique_ptr<Database>> dbs;
  auto it = dbs.find(employees);
  if (it != dbs.end()) return it->second.get();
  auto d = std::make_unique<Database>();
  bench::MustExecute(d.get(), R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    bench::MustExecute(d.get(),
                       "append to Departments (id = " + std::to_string(i) +
                           ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    bench::MustExecute(
        d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                     "\", salary = " + std::to_string(i % 500) +
                     ".0, dept_id = " + std::to_string(i % departments) + ")");
  }
  Database* out = d.get();
  dbs.emplace(employees, std::move(d));
  return out;
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

// A selective point probe: one department, its employees.
const char* kPointProbe =
    "retrieve (E.name) from E in Employees, D in Departments "
    "where D.id = E.dept_id and E.salary = 123.0";

void RunJoin(benchmark::State& state, const char* query, bool hash_join,
             bool indexed) {
  Database* db = Db(static_cast<int>(state.range(0)));
  excess::OptimizerOptions saved = *db->mutable_optimizer_options();
  db->mutable_optimizer_options()->hash_join = hash_join;
  db->mutable_optimizer_options()->use_indexes = indexed;
  if (indexed) {
    bench::MustExecute(db, "create index DeptIdIdx on Departments (id) "
                           "using hash");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, query));
  }
  if (indexed) {
    bench::MustExecute(db, "drop index DeptIdIdx");
  }
  *db->mutable_optimizer_options() = saved;
  state.SetComplexityN(state.range(0));
}

void BM_EquiJoin_Hash(benchmark::State& state) {
  RunJoin(state, kJoin, true, false);
}
void BM_EquiJoin_NestedLoop(benchmark::State& state) {
  RunJoin(state, kJoin, false, false);
}
void BM_EquiJoin_Index(benchmark::State& state) {
  RunJoin(state, kJoin, false, true);
}
BENCHMARK(BM_EquiJoin_Hash)->Arg(200)->Arg(800)->Arg(3200)->Complexity();
BENCHMARK(BM_EquiJoin_NestedLoop)->Arg(200)->Arg(800)->Arg(3200)->Complexity();
BENCHMARK(BM_EquiJoin_Index)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

// Selective point probes: few surviving probe rows. The hash join still
// pays the full build; an index on the *probed* attribute lets the
// optimizer skip both the build and the scan.
void BM_PointProbe_Hash(benchmark::State& state) {
  RunJoin(state, kPointProbe, true, false);
}
void BM_PointProbe_Index(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  excess::OptimizerOptions saved = *db->mutable_optimizer_options();
  bench::MustExecute(db, "create index SalIdx on Employees (salary) "
                         "using btree");
  bench::MustExecute(db, "create index DeptIdIdx on Departments (id) "
                         "using hash");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, kPointProbe));
  }
  bench::MustExecute(db, "drop index SalIdx");
  bench::MustExecute(db, "drop index DeptIdIdx");
  *db->mutable_optimizer_options() = saved;
}
BENCHMARK(BM_PointProbe_Hash)->Arg(3200);
BENCHMARK(BM_PointProbe_Index)->Arg(3200);

// Hash aggregation: one pass over n rows into n/10 groups, with a
// unique-qualified aggregate tracking distinct values per group.
void BM_HashAggregate(benchmark::State& state) {
  Database* db = Db(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db,
        "retrieve unique (E.dept_id, s = sum(E.salary over E.dept_id), "
        "u = count(unique E.salary over E.dept_id)) from E in Employees"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(200)->Arg(800)->Arg(3200)->Complexity();

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

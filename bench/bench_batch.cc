// B16 — Vectorized batch execution: the B14 join sweep and an
// aggregate sweep re-run under the batch-at-a-time executor at batch
// sizes 1 / 64 / 1024 (default) / 4096, against the row-at-a-time
// interpreter (ExecOptions::vectorized = false) on identical data.
// Expected shape: batch size 1 tracks the row path (same work, batch
// bookkeeping on top); throughput rises steeply to ~64 rows per batch
// as per-batch costs amortize and flattens by 1024 once scratch
// columns stop fitting deeper cache levels — the speedup at the
// default batch size against the row path is the headline number
// tracked in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "excess/session.h"

namespace exodus {
namespace {

// One database per scale: n employees joining n/10 departments (the
// B14 data generator, so sweeps stay comparable across PRs).
Database* Db(int employees) {
  static std::map<int, std::unique_ptr<Database>> dbs;
  auto it = dbs.find(employees);
  if (it != dbs.end()) return it->second.get();
  auto d = std::make_unique<Database>();
  bench::MustExecute(d.get(), R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    bench::MustExecute(d.get(),
                       "append to Departments (id = " + std::to_string(i) +
                           ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    bench::MustExecute(
        d.get(), "append to Employees (name = \"e" + std::to_string(i) +
                     "\", salary = " + std::to_string(i % 500) +
                     ".0, dept_id = " + std::to_string(i % departments) + ")");
  }
  Database* out = d.get();
  dbs.emplace(employees, std::move(d));
  return out;
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

const char* kAggregate =
    "retrieve unique (E.dept_id, s = sum(E.salary over E.dept_id), "
    "u = count(unique E.salary over E.dept_id)) from E in Employees";

// Runs `query` with the executor configured for batch execution at
// state.range(1) rows per batch (0 = row-at-a-time path).
void RunBatched(benchmark::State& state, const char* query) {
  Database* db = Db(static_cast<int>(state.range(0)));
  const int batch_size = static_cast<int>(state.range(1));
  excess::ExecOptions saved = *db->mutable_exec_options();
  if (batch_size == 0) {
    db->mutable_exec_options()->vectorized = false;
  } else {
    db->mutable_exec_options()->vectorized = true;
    db->mutable_exec_options()->batch_size = batch_size;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, query));
  }
  *db->mutable_exec_options() = saved;
  state.SetComplexityN(state.range(0));
}

// Join sweep (B14 shape): rows = {200, 800, 3200} x batch size
// {0 = row path, 1, 64, 1024, 4096}.
void BM_BatchJoin(benchmark::State& state) { RunBatched(state, kJoin); }
BENCHMARK(BM_BatchJoin)
    ->ArgsProduct({{200, 800, 3200}, {0, 1, 64, 1024, 4096}})
    ->Complexity();

// Aggregate sweep over the same data and batch sizes.
void BM_BatchAggregate(benchmark::State& state) {
  RunBatched(state, kAggregate);
}
BENCHMARK(BM_BatchAggregate)
    ->ArgsProduct({{200, 800, 3200}, {0, 1, 64, 1024, 4096}})
    ->Complexity();

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

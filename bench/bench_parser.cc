// B1 — Parser throughput vs. query complexity.
// Expected shape: parse time grows roughly linearly with token count;
// the dynamic (ADT-extended) operator table adds only a small constant
// factor over the bare grammar.

#include <benchmark/benchmark.h>

#include <string>

#include "adt/registry.h"
#include "bench_common.h"
#include "excess/parser.h"

namespace exodus {
namespace {

/// Builds a retrieve with `n` projection terms and `n` conjuncts.
std::string SyntheticQuery(int n) {
  std::string q = "retrieve (";
  for (int i = 0; i < n; ++i) {
    if (i > 0) q += ", ";
    q += "E.a" + std::to_string(i) + " + " + std::to_string(i) + ".5";
  }
  q += ") from E in Employees where ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) q += " and ";
    q += "E.b" + std::to_string(i) + " > " + std::to_string(i);
  }
  return q;
}

void BM_ParseRetrieve(benchmark::State& state) {
  std::string query = SyntheticQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    excess::Parser parser(query);
    auto stmt = parser.ParseSingleStatement();
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(query.size()));
  state.counters["query_bytes"] = static_cast<double>(query.size());
}
BENCHMARK(BM_ParseRetrieve)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ParseWithDynamicOperators(benchmark::State& state) {
  // Same query, parsed with the full ADT operator table installed.
  Database db;  // installs Date/Complex/Box operators
  std::string query = SyntheticQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    excess::Parser parser(query, db.adts());
    auto stmt = parser.ParseSingleStatement();
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(query.size()));
}
BENCHMARK(BM_ParseWithDynamicOperators)->Arg(16)->Arg(64)->Arg(256);

void BM_ParseDefineType(benchmark::State& state) {
  std::string ddl = "define type Wide (";
  for (int i = 0; i < state.range(0); ++i) {
    if (i > 0) ddl += ", ";
    ddl += "a" + std::to_string(i) + ": {own ref Wide}";
  }
  ddl += ")";
  for (auto _ : state) {
    excess::Parser parser(ddl);
    auto stmt = parser.ParseSingleStatement();
    if (!stmt.ok()) std::abort();
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseDefineType)->Arg(4)->Arg(32)->Arg(128);

void BM_UnparseReparseRoundTrip(benchmark::State& state) {
  std::string query = SyntheticQuery(32);
  excess::Parser parser(query);
  auto stmt = parser.ParseSingleStatement();
  if (!stmt.ok()) std::abort();
  for (auto _ : state) {
    std::string text = (*stmt)->ToString();
    excess::Parser p2(text);
    auto again = p2.ParseSingleStatement();
    if (!again.ok()) std::abort();
    benchmark::DoNotOptimize(again);
  }
}
BENCHMARK(BM_UnparseReparseRoundTrip);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();

// B9 — Storage manager: object store read/write throughput and buffer
// pool behaviour over a working-set sweep.
// Expected shape: sequential insert throughput is page-append bound;
// random reads degrade sharply once the working set exceeds the buffer
// pool (hit ratio collapse) for file-backed volumes; updates that
// trigger forwarding cost roughly an extra record write.

#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "bench_common.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "storage/pager.h"

namespace exodus::storage {
namespace {

void BM_ObjectStoreInsert(benchmark::State& state) {
  size_t record_size = static_cast<size_t>(state.range(0));
  std::string payload(record_size, 'x');
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager;
    BufferPool pool(&pager, 64);
    ObjectStore store(&pool);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      if (!store.Insert(payload).ok()) std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ObjectStoreInsert)->Arg(32)->Arg(256)->Arg(2048);

void BM_ObjectStoreRandomRead(benchmark::State& state) {
  // range(0): number of records; pool fixed at 16 frames (~128 KiB).
  int records = static_cast<int>(state.range(0));
  Pager pager;
  BufferPool pool(&pager, 16);
  ObjectStore store(&pool);
  std::vector<Rid> rids;
  std::string payload(256, 'r');
  for (int i = 0; i < records; ++i) {
    auto rid = store.Insert(payload);
    if (!rid.ok()) std::abort();
    rids.push_back(*rid);
  }
  std::mt19937 rng(42);
  for (auto _ : state) {
    const Rid& rid = rids[std::uniform_int_distribution<size_t>(
        0, rids.size() - 1)(rng)];
    auto r = store.Read(rid);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r);
  }
  double accesses = static_cast<double>(pool.hits() + pool.misses());
  state.counters["hit_ratio"] =
      accesses > 0 ? static_cast<double>(pool.hits()) / accesses : 0.0;
}
BENCHMARK(BM_ObjectStoreRandomRead)
    ->Arg(100)     // fits in pool
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000);   // far exceeds pool

void BM_InPlaceUpdate(benchmark::State& state) {
  Pager pager;
  BufferPool pool(&pager, 64);
  ObjectStore store(&pool);
  auto rid = store.Insert(std::string(512, 'a'));
  if (!rid.ok()) std::abort();
  std::string same_size(512, 'b');
  for (auto _ : state) {
    if (!store.Update(*rid, same_size).ok()) std::abort();
  }
}
BENCHMARK(BM_InPlaceUpdate);

void BM_ForwardingUpdate(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager;
    BufferPool pool(&pager, 64);
    ObjectStore store(&pool);
    auto rid = store.Insert(std::string(100, 'a'));
    if (!rid.ok()) std::abort();
    // Fill the page so growth forces relocation.
    while (true) {
      Page probe;
      if (!pager.ReadPage(rid->page, &probe).ok()) std::abort();
      if (probe.FreeSpace() < 2500) break;
      if (!store.Insert(std::string(1000, 'f')).ok()) std::abort();
    }
    state.ResumeTiming();
    if (!store.Update(*rid, std::string(5000, 'B')).ok()) std::abort();
  }
}
BENCHMARK(BM_ForwardingUpdate);

void BM_FileBackedCheckpoint(benchmark::State& state) {
  // End-to-end Database::Save of a populated database.
  exodus::Database db;
  exodus::bench::MustExecute(&db, R"(
    define type Employee (name: char[25], salary: float8)
    create Employees : {Employee}
  )");
  int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    exodus::bench::MustExecute(
        &db, "append to Employees (name = \"e" + std::to_string(i) +
                 "\", salary = " + std::to_string(i) + ".0)");
  }
  std::string path = "/tmp/exodus_bench_checkpoint.db";
  for (auto _ : state) {
    if (!db.Save(path).ok()) std::abort();
  }
  std::remove(path.c_str());
  state.counters["objects"] = static_cast<double>(rows);
}
BENCHMARK(BM_FileBackedCheckpoint)->Arg(100)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace exodus::storage

BENCHMARK_MAIN();

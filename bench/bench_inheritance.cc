// B8 — Attribute lookup and function dispatch vs. type-lattice depth.
// Expected shape: resolved attribute sets are flattened at definition
// time, so attribute access cost is independent of lattice depth; only
// late-bound function dispatch walks the linearized chain and grows
// mildly with depth.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.h"

namespace exodus {
namespace {

constexpr int kRows = 1000;

/// Defines a chain T0 <- T1 <- ... <- Tdepth, each level adding one
/// attribute, an extent of Tdepth objects, and a function on T0 so late
/// binding must walk the whole chain.
std::unique_ptr<Database> BuildDb(int depth) {
  auto db = std::make_unique<Database>();
  bench::MustExecute(db.get(), "define type T0 (a0: int4)");
  for (int d = 1; d <= depth; ++d) {
    bench::MustExecute(db.get(), "define type T" + std::to_string(d) +
                                     " inherits T" + std::to_string(d - 1) +
                                     " (a" + std::to_string(d) + ": int4)");
  }
  bench::MustExecute(db.get(),
                     "create Things : {T" + std::to_string(depth) + "}");
  for (int i = 0; i < kRows; ++i) {
    bench::MustExecute(db.get(), "append to Things (a0 = " +
                                     std::to_string(i % 100) + ", a" +
                                     std::to_string(depth) + " = " +
                                     std::to_string(i % 7) + ")");
  }
  bench::MustExecute(db.get(),
                     "define function Base (X: T0) returns int4 as "
                     "retrieve (X.a0 + 1)");
  return db;
}

struct Shared {
  std::unique_ptr<Database> db;
  int depth = -1;
};
Shared g_shared;

Database* DbFor(int depth) {
  if (g_shared.depth != depth) {
    g_shared.db = BuildDb(depth);
    g_shared.depth = depth;
  }
  return g_shared.db.get();
}

void BM_InheritedAttributeAccess(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)));
  // a0 is declared at the root of the chain; access happens through the
  // flattened layout of the leaf type.
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (count(X)) from X in Things where X.a0 = 5"));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InheritedAttributeAccess)->Arg(0)->Arg(2)->Arg(8)->Arg(16);

void BM_LocalAttributeAccess(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Database* db = DbFor(depth);
  std::string q = "retrieve (count(X)) from X in Things where X.a" +
                  std::to_string(depth) + " = 3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(db, q));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LocalAttributeAccess)->Arg(0)->Arg(2)->Arg(8)->Arg(16);

void BM_LateBoundFunctionDispatch(benchmark::State& state) {
  Database* db = DbFor(static_cast<int>(state.range(0)));
  // Base is defined on T0; dispatch linearizes from the runtime leaf
  // type up the chain on every call.
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::MustQuery(
        db, "retrieve (count(X)) from X in Things where X.Base > 50"));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LateBoundFunctionDispatch)->Arg(0)->Arg(2)->Arg(8)->Arg(16);

void BM_TypeDefinitionAtDepth(benchmark::State& state) {
  // Cost of defining one more type at the bottom of a deep lattice
  // (attribute-set resolution is linear in inherited attributes).
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    bench::MustExecute(&db, "define type T0 (a0: int4)");
    for (int d = 1; d <= depth; ++d) {
      bench::MustExecute(&db, "define type T" + std::to_string(d) +
                                  " inherits T" + std::to_string(d - 1) +
                                  " (a" + std::to_string(d) + ": int4)");
    }
    state.ResumeTiming();
    bench::MustExecute(&db, "define type Leaf inherits T" +
                                std::to_string(depth) + " (z: int4)");
  }
}
BENCHMARK(BM_TypeDefinitionAtDepth)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
}  // namespace exodus

BENCHMARK_MAIN();
